"""Tests for the SVG figure renderers."""

import xml.etree.ElementTree as ET

import pytest

from conftest import LoopWorkload

from repro.core.experiment import run_architecture_comparison
from repro.core.figures import (
    render_breakdown_svg,
    render_comparison_figure,
    render_ipc_svg,
)
from repro.errors import ReproError

_SVG = "{http://www.w3.org/2000/svg}"


def _loop_factory(n_cpus, functional, scale):
    return LoopWorkload(n_cpus, functional, iterations=4)


@pytest.fixture(scope="module")
def mipsy_results():
    return run_architecture_comparison(_loop_factory, scale="test")


@pytest.fixture(scope="module")
def mxs_results():
    return run_architecture_comparison(
        _loop_factory, cpu_model="mxs", scale="test"
    )


def test_breakdown_svg_is_valid_xml(mipsy_results):
    svg = render_breakdown_svg(mipsy_results, "Figure X")
    root = ET.fromstring(svg)
    assert root.tag == f"{_SVG}svg"


def test_breakdown_svg_has_bar_per_architecture(mipsy_results):
    svg = render_breakdown_svg(mipsy_results, "t")
    root = ET.fromstring(svg)
    labels = [el.text for el in root.iter(f"{_SVG}text")]
    for arch in ("shared-l1", "shared-l2", "shared-mem"):
        assert arch in labels


def test_breakdown_svg_segments_scale_with_time(mipsy_results):
    svg = render_breakdown_svg(mipsy_results, "t")
    root = ET.fromstring(svg)
    rects = [
        el for el in root.iter(f"{_SVG}rect")
        if el.get("height") == "26"
    ]
    assert len(rects) >= 6  # several segments across three bars
    widths = [float(r.get("width")) for r in rects]
    assert all(w > 0 for w in widths)


def test_breakdown_svg_writes_file(mipsy_results, tmp_path):
    path = tmp_path / "fig.svg"
    render_breakdown_svg(mipsy_results, "t", path=path)
    assert path.read_text().startswith("<svg")


def test_breakdown_svg_title_rendered(mipsy_results):
    svg = render_breakdown_svg(mipsy_results, "My Title")
    assert "My Title" in svg


def test_ipc_svg_renders_for_mxs(mxs_results):
    svg = render_ipc_svg(mxs_results, "Figure 11")
    root = ET.fromstring(svg)
    assert root.tag == f"{_SVG}svg"
    assert "Achieved IPC" in svg


def test_ipc_svg_rejects_mipsy_results(mipsy_results):
    with pytest.raises(ReproError):
        render_ipc_svg(mipsy_results, "t")


def test_comparison_figure_dispatches(mipsy_results, mxs_results):
    assert "CPU" in render_comparison_figure(mipsy_results, "t")
    assert "Achieved IPC" in render_comparison_figure(mxs_results, "t")


def test_empty_results_rejected():
    with pytest.raises(ReproError):
        render_breakdown_svg({}, "t")
