"""Tests for the timed functional memory and LL/SC semantics."""

from repro.mem.functional import FunctionalMemory


def test_unwritten_reads_zero(functional):
    assert functional.read(0x100, 50) == 0


def test_write_visible_only_at_time(functional):
    functional.write(0x100, 7, visible_at=10)
    assert functional.read(0x100, 9) == 0
    assert functional.read(0x100, 10) == 7
    assert functional.read(0x100, 99) == 7


def test_poke_visible_from_zero(functional):
    functional.poke(0x100, 3)
    assert functional.read(0x100, 0) == 3


def test_latest_write_wins(functional):
    functional.write(0x100, 1, visible_at=5)
    functional.write(0x100, 2, visible_at=8)
    assert functional.read(0x100, 6) == 1
    assert functional.read(0x100, 8) == 2


def test_out_of_order_recording(functional):
    functional.write(0x100, 2, visible_at=8)
    functional.write(0x100, 1, visible_at=5)  # recorded later, earlier time
    assert functional.read(0x100, 6) == 1
    assert functional.read(0x100, 9) == 2


def test_same_time_writes_ordered_by_recording(functional):
    functional.write(0x100, 1, visible_at=5)
    functional.write(0x100, 2, visible_at=5)
    assert functional.read(0x100, 5) == 2


def test_last_write_time(functional):
    assert functional.last_write_time(0x100) is None
    functional.write(0x100, 1, visible_at=33)
    assert functional.last_write_time(0x100) == 33


def test_history_is_capped(functional):
    for i in range(500):
        functional.write(0x100, i, visible_at=i)
    assert len(functional._history[0x100]) <= 128
    assert functional.read(0x100, 499) == 499


# ----------------------------------------------------------------------
# LL / SC


def test_ll_sc_success_when_unchallenged(functional):
    assert functional.load_linked(0, 0x200, 10) == 0
    assert functional.store_conditional(0, 0x200, 1, 12)
    assert functional.read(0x200, 12) == 1


def test_sc_without_reservation_fails(functional):
    assert not functional.store_conditional(0, 0x200, 1, 5)


def test_sc_fails_on_intervening_write(functional):
    functional.load_linked(0, 0x200, 10)
    functional.write(0x200, 9, visible_at=11)
    assert not functional.store_conditional(0, 0x200, 1, 12)


def test_sc_fails_on_tied_cycle_write_recorded_after_ll(functional):
    # The race that decides simultaneous lock acquisitions: another
    # CPU's write lands at the very cycle of our LL but is recorded
    # after the LL executed.
    functional.load_linked(1, 0x200, 10)
    functional.write(0x200, 9, visible_at=10)
    assert not functional.store_conditional(1, 0x200, 1, 12)


def test_sc_ignores_writes_after_sc_time(functional):
    functional.load_linked(0, 0x200, 10)
    functional.write(0x200, 9, visible_at=50)  # becomes visible later
    assert functional.store_conditional(0, 0x200, 1, 12)


def test_sc_fails_on_wrong_address(functional):
    functional.load_linked(0, 0x200, 10)
    assert not functional.store_conditional(0, 0x204, 1, 12)


def test_sc_clears_reservation(functional):
    functional.load_linked(0, 0x200, 10)
    assert functional.store_conditional(0, 0x200, 1, 12)
    assert not functional.store_conditional(0, 0x200, 2, 14)


def test_simultaneous_sc_race_has_single_winner(functional):
    for cpu in range(4):
        assert functional.load_linked(cpu, 0x300, 20) == 0
    outcomes = [
        functional.store_conditional(cpu, 0x300, 1, 22) for cpu in range(4)
    ]
    assert outcomes.count(True) == 1
    assert outcomes[0]  # deterministic: first processed wins


def test_reservations_are_per_cpu(functional):
    functional.load_linked(0, 0x400, 10)
    functional.load_linked(1, 0x404, 10)
    assert functional.has_reservation(0)
    assert functional.has_reservation(1)
    functional.clear_reservation(0)
    assert not functional.has_reservation(0)
    assert functional.has_reservation(1)


def test_sc_orders_after_own_pending_store(functional):
    """Regression: a lock re-acquire racing this CPU's own posted
    release must not be undone when the release drains.

    CPU 0 releases (store 0, visible at t=100) and immediately
    re-acquires: its LL forwards the pending release (reads 0), and the
    SC's write must be ordered at/after t=100 — otherwise the draining
    release would overwrite the lock back to 0.
    """
    # Acquire first.
    functional.load_linked(0, 0x600, 10)
    assert functional.store_conditional(0, 0x600, 1, 12)
    # Posted release: visible much later.
    functional.write(0x600, 0, visible_at=100, cpu=0)
    # Re-acquire before the release is globally visible.
    assert functional.load_linked(0, 0x600, 20) == 0  # own-store forwarding
    assert functional.store_conditional(0, 0x600, 1, 22)
    # The lock must read held at any time after the release drains.
    assert functional.read(0x600, 100) == 1
    assert functional.read(0x600, 1000) == 1


def test_read_own_write_forwarding(functional):
    functional.write(0x700, 5, visible_at=90, cpu=2)
    # The writer sees it immediately; others only at visibility.
    assert functional.read(0x700, 50, cpu=2) == 5
    assert functional.read(0x700, 50, cpu=1) == 0
    assert functional.read(0x700, 95, cpu=1) == 5


def test_lock_handoff_sequence(functional):
    """Full acquire/release/acquire cycle between two CPUs."""
    # CPU 0 takes the lock.
    assert functional.load_linked(0, 0x500, 10) == 0
    assert functional.store_conditional(0, 0x500, 1, 12)
    # CPU 1 spins: sees it held.
    assert functional.load_linked(1, 0x500, 14) == 1
    # CPU 0 releases at t=30.
    functional.write(0x500, 0, visible_at=30)
    # CPU 1 retries after the release.
    assert functional.load_linked(1, 0x500, 31) == 0
    assert functional.store_conditional(1, 0x500, 1, 33)
    assert functional.read(0x500, 33) == 1
