"""Cross-architecture integration tests.

These assert the *shape* results the paper reports, at test scale with
loose thresholds, so the full benchmark harness (benchmarks/) is backed
by quick regression checks here.
"""

import pytest

from repro.core.experiment import run_architecture_comparison, run_one
from repro.core.report import normalized_times
from repro.mem.types import AccessKind, StallLevel
from repro.workloads import WORKLOADS


def compare(name, **kwargs):
    return run_architecture_comparison(
        WORKLOADS[name], cpu_model="mipsy", scale="test",
        max_cycles=3_000_000, **kwargs
    )


# ----------------------------------------------------------------------
# Table 2: contention-free access latencies


@pytest.mark.parametrize(
    "arch,kind,expected_level",
    [
        ("shared-l1", AccessKind.LOAD, StallLevel.L1),
        ("shared-l2", AccessKind.LOAD, StallLevel.NONE),
        ("shared-mem", AccessKind.LOAD, StallLevel.NONE),
    ],
)
def test_l1_hit_latencies_match_table2(arch, kind, expected_level):
    from repro.core.configs import build_memory, paper_config
    from repro.sim.stats import SystemStats

    config = paper_config()
    config.shared_l1_optimistic = False
    memory = build_memory(arch, config, SystemStats.for_cpus(4))
    memory.access(0, AccessKind.LOAD, 0x1000_0000, 0)  # warm
    result = memory.access(0, kind, 0x1000_0000, 1000)
    if arch == "shared-l1":
        assert result.done - 1000 == 3
    else:
        assert result.done - 1000 == 1
    assert result.level == expected_level


def test_l2_hit_latencies_match_table2():
    from repro.core.configs import build_memory, paper_config
    from repro.sim.stats import SystemStats

    for arch, expected in (("shared-l2", 14), ("shared-mem", 10)):
        config = paper_config()
        memory = build_memory(arch, config, SystemStats.for_cpus(4))
        memory.access(0, AccessKind.LOAD, 0x1000_0000, 0)  # fills L2+L1
        # Evict only the L1 copy by conflicting loads, then re-read.
        l1 = memory.l1d[0]
        way = l1.n_sets * config.line_size
        t = 2000
        for k in range(1, l1.assoc + 1):
            t = memory.access(0, AccessKind.LOAD, 0x1000_0000 + k * way, t).done
        result = memory.access(0, AccessKind.LOAD, 0x1000_0000, 100_000)
        assert result.level == StallLevel.L2
        # +1 for the L1 probe / port step before the L2 access begins.
        assert result.done - 100_000 <= expected + 2
        assert result.done - 100_000 >= expected


# ----------------------------------------------------------------------
# Fine-grained apps: shared caches win big (Figures 4 and 8)


@pytest.mark.parametrize("name", ["eqntott", "ear"])
def test_fine_grained_apps_favor_shared_caches(name):
    times = normalized_times(compare(name))
    assert times["shared-l1"] < 0.9
    assert times["shared-l2"] < 1.0
    assert times["shared-l1"] < times["shared-l2"]


def test_ear_has_negligible_memory_stalls_on_shared_l1():
    results = compare("ear")
    breakdown = results["shared-l1"].stats.aggregate_breakdown()
    assert breakdown.memory_stall < 0.25 * breakdown.total


def test_ear_l1_invalidation_rate_highest_on_private_caches():
    results = compare("ear")
    private = results["shared-mem"].stats.aggregate_caches(".l1d")
    shared = results["shared-l1"].stats.aggregate_caches(".l1d")
    assert private.miss_rate_inval > 0
    assert shared.misses_inval == 0


# ----------------------------------------------------------------------
# Communication shows up as invalidation misses only where it should


@pytest.mark.parametrize("name", ["eqntott", "mp3d", "volpack"])
def test_shared_l1_never_has_invalidation_misses(name):
    results = compare(name)
    l1 = results["shared-l1"].stats.aggregate_caches(".l1d")
    l2 = results["shared-l1"].stats.aggregate_caches(".l2")
    assert l1.misses_inval == 0
    assert l2.misses_inval == 0


def test_shared_mem_pays_cache_to_cache_for_sharing():
    results = compare("eqntott")
    assert results["shared-mem"].stats.c2c_transfers > 0
    assert results["shared-l2"].stats.c2c_transfers == 0


# ----------------------------------------------------------------------
# MP3D ablation (Section 4.1): 4-way L2 removes the conflict misses


def test_mp3d_l2_conflicts_drop_with_associativity():
    direct = run_one(
        "shared-l1", WORKLOADS["mp3d"], scale="test", max_cycles=3_000_000
    )
    four_way = run_one(
        "shared-l1", WORKLOADS["mp3d"], scale="test", max_cycles=3_000_000,
        mem_config=_assoc4(),
    )
    rate_dm = direct.stats.aggregate_caches(".l2").miss_rate
    rate_4w = four_way.stats.aggregate_caches(".l2").miss_rate
    assert rate_4w < rate_dm


def _assoc4():
    from repro.core.configs import test_config as make_test_config

    config = make_test_config()
    config.l2_assoc = 4
    return config


# ----------------------------------------------------------------------
# Multiprogramming: no user-level sharing


def test_multiprog_shares_only_kernel_lines():
    results = compare("multiprog")
    stats = results["shared-mem"].stats
    l1 = stats.aggregate_caches(".l1d")
    # Kernel data sharing exists but is a small fraction of misses.
    assert l1.misses_inval > 0
    assert l1.misses_inval < l1.misses_repl


# ----------------------------------------------------------------------
# MXS vs Mipsy (Figure 11 direction): the shared-L1 advantage shrinks
# when the 3-cycle hit time and bank contention are modeled


def test_shared_l1_advantage_shrinks_under_mxs():
    mipsy = normalized_times(compare("eqntott"))
    mxs = normalized_times(
        run_architecture_comparison(
            WORKLOADS["eqntott"], cpu_model="mxs", scale="test",
            max_cycles=3_000_000,
        )
    )
    assert mxs["shared-l1"] > mipsy["shared-l1"] * 0.9


def test_all_workloads_complete_on_all_architectures():
    for name in sorted(WORKLOADS):
        results = compare(name)
        for arch, result in results.items():
            assert result.cycles < 3_000_000, (name, arch)
            assert result.instructions > 0
