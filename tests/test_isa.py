"""Tests for instruction records, code layout, and the emitter."""

import pytest

from repro.errors import WorkloadError
from repro.isa.codegen import INSTRUCTION_BYTES, CodeRegion, CodeSpace
from repro.isa.instructions import FU_LATENCY, Instruction, OpClass, fu_kind
from repro.isa.stream import Emitter


# ----------------------------------------------------------------------
# Table 1 latencies


def test_table1_integer_latencies():
    assert FU_LATENCY[OpClass.IALU] == 1
    assert FU_LATENCY[OpClass.IMUL] == 2
    assert FU_LATENCY[OpClass.IDIV] == 12
    assert FU_LATENCY[OpClass.BRANCH] == 2
    assert FU_LATENCY[OpClass.STORE] == 1


def test_table1_fp_latencies():
    assert FU_LATENCY[OpClass.FADD_SP] == 2
    assert FU_LATENCY[OpClass.FMUL_SP] == 2
    assert FU_LATENCY[OpClass.FDIV_SP] == 12
    assert FU_LATENCY[OpClass.FADD_DP] == 2
    assert FU_LATENCY[OpClass.FMUL_DP] == 2
    assert FU_LATENCY[OpClass.FDIV_DP] == 18


def test_fu_kind_memory_port_is_shared():
    assert fu_kind(OpClass.LOAD) == "mem"
    assert fu_kind(OpClass.STORE) == "mem"
    assert fu_kind(OpClass.LL) == "mem"
    assert fu_kind(OpClass.SC) == "mem"


def test_instruction_predicates():
    load = Instruction(OpClass.LOAD, addr=64)
    store = Instruction(OpClass.STORE, addr=64)
    branch = Instruction(OpClass.BRANCH, taken=True)
    alu = Instruction(OpClass.IALU)
    assert load.is_memory and load.is_load and not load.is_store
    assert store.is_memory and store.is_store and not store.is_load
    assert branch.is_branch and not branch.is_memory
    assert not alu.is_memory and not alu.is_branch
    assert Instruction(OpClass.LL).is_load
    assert Instruction(OpClass.SC).is_store


def test_instruction_repr_mentions_op_and_addr():
    inst = Instruction(OpClass.LOAD, pc=0x400000, addr=0x1000)
    text = repr(inst)
    assert "LOAD" in text
    assert "0x1000" in text


# ----------------------------------------------------------------------
# code layout


def test_code_region_pc_wraps():
    region = CodeRegion("f", 0x1000, 4)
    assert region.pc_of(0) == 0x1000
    assert region.pc_of(3) == 0x100C
    assert region.pc_of(4) == 0x1000  # wraps


def test_code_region_contains():
    region = CodeRegion("f", 0x1000, 4)
    assert region.contains(0x1000)
    assert region.contains(0x100C)
    assert not region.contains(0x1010)


def test_code_region_rejects_bad_geometry():
    with pytest.raises(WorkloadError):
        CodeRegion("bad", 0x1000, 0)
    with pytest.raises(WorkloadError):
        CodeRegion("bad", 0x1001, 4)


def test_code_space_no_overlap_and_alignment():
    space = CodeSpace(base=0x400000, align=32)
    a = space.region("a", 5)
    b = space.region("b", 3)
    assert a.limit <= b.base
    assert b.base % 32 == 0


def test_code_space_same_name_returns_same_region():
    space = CodeSpace()
    first = space.region("f", 8)
    second = space.region("f", 8)
    assert first is second
    with pytest.raises(WorkloadError):
        space.region("f", 16)


def test_code_space_footprint():
    space = CodeSpace(base=0, align=32)
    space.region("a", 8)  # 32 bytes exactly
    space.region("b", 1)  # padded to 32
    assert space.footprint_bytes == 64
    assert len(space) == 2
    assert "a" in space
    assert space["a"].size == 8


# ----------------------------------------------------------------------
# emitter


def make_emitter(slots=16):
    return Emitter(CodeRegion("f", 0x2000, slots))


def test_emitter_sequential_pcs():
    em = make_emitter()
    first = em.ialu()
    second = em.imul()
    assert second.pc - first.pc == INSTRUCTION_BYTES


def test_emitter_taken_branch_moves_cursor():
    em = make_emitter()
    top = em.label()
    em.ialu()
    branch = em.branch(True, to=top)
    assert branch.taken
    assert branch.target == em.region.pc_of(top)
    # cursor back at top
    assert em.ialu().pc == em.region.pc_of(top)


def test_emitter_not_taken_branch_falls_through():
    em = make_emitter()
    em.ialu()
    branch = em.branch(False)
    nxt = em.ialu()
    assert not branch.taken
    assert branch.target == nxt.pc


def test_emitter_taken_branch_requires_target():
    em = make_emitter()
    with pytest.raises(WorkloadError):
        em.branch(True)


def test_emitter_memory_ops():
    em = make_emitter()
    load = em.load(0x500, want_value=True)
    store = em.store(0x504, value=7)
    ll = em.ll(0x600)
    sc = em.sc(0x600, 1)
    assert load.want_value and load.addr == 0x500
    assert store.value == 7
    assert ll.op is OpClass.LL and ll.want_value
    assert sc.op is OpClass.SC and sc.value == 1 and sc.want_value


def test_emitter_call_and_ret():
    space = CodeSpace()
    caller = space.region("caller", 8)
    callee = space.region("callee", 8)
    em = Emitter(caller)
    em.ialu()
    call = em.call(callee)
    assert call.taken and call.target == callee.pc_of(0)
    assert em.call_depth == 1
    inner = em.ialu()
    assert callee.contains(inner.pc)
    ret = em.ret()
    assert caller.contains(ret.target)
    back = em.ialu()
    assert caller.contains(back.pc)


def test_emitter_ret_without_call_raises():
    em = make_emitter()
    with pytest.raises(WorkloadError):
        em.ret()


def test_emitter_jump_moves_without_emitting():
    em = make_emitter()
    em.ialu()
    em.ialu()
    em.jump(0)
    assert em.ialu().pc == em.region.pc_of(0)


def test_emitter_ops_bulk():
    em = make_emitter()
    insts = list(em.ops(OpClass.IALU, 5))
    assert len(insts) == 5
    assert all(inst.op is OpClass.IALU for inst in insts)
    pcs = [inst.pc for inst in insts]
    assert pcs == sorted(pcs)
