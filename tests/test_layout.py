"""Tests for the data address-space layout."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.layout import DATA_BASE, KERNEL_BASE, AddressSpace


def test_allocations_do_not_overlap():
    space = AddressSpace()
    a = space.alloc(100)
    b = space.alloc(50)
    assert a + 100 <= b


def test_alignment():
    space = AddressSpace()
    space.alloc(3)
    b = space.alloc(8, align=64)
    assert b % 64 == 0


def test_alloc_array_is_line_aligned():
    space = AddressSpace(line_size=32)
    space.alloc(5)
    base = space.alloc_array(10, 8)
    assert base % 32 == 0


def test_alloc_line_gives_whole_lines():
    space = AddressSpace(line_size=32)
    first = space.alloc_line()
    second = space.alloc_line()
    assert second - first == space.SYNC_PAD
    assert first % space.SYNC_PAD == 0


def test_alloc_at_fixed_address():
    space = AddressSpace(base=0x1000)
    space.alloc(64)
    addr = space.alloc_at(0x9000, 128)
    assert addr == 0x9000
    nxt = space.alloc(8)
    assert nxt >= 0x9000 + 128


def test_alloc_at_rejects_overlap():
    space = AddressSpace(base=0x1000)
    space.alloc(0x100)
    with pytest.raises(WorkloadError):
        space.alloc_at(0x1000, 32)


def test_bad_sizes_rejected():
    space = AddressSpace()
    with pytest.raises(WorkloadError):
        space.alloc(0)
    with pytest.raises(WorkloadError):
        space.alloc(8, align=3)
    with pytest.raises(WorkloadError):
        space.alloc_at(space.base + 64, 0)


def test_fork_is_disjoint():
    space = AddressSpace()
    space.alloc(1000)
    other = space.fork(1 << 24)
    a = other.alloc(100)
    assert a >= space.base + (1 << 24)


def test_used_bytes():
    space = AddressSpace()
    space.alloc(100, align=8)
    assert space.used_bytes >= 100


def test_segment_bases_are_staggered_in_a_direct_mapped_l2():
    """Text (0x400000), data and kernel bases must not map to the same
    sets of a 256 KB direct-mapped cache (DESIGN.md layout rule)."""
    l2_way = 256 * 1024
    offsets = {0x0040_0000 % l2_way, DATA_BASE % l2_way, KERNEL_BASE % l2_way}
    assert len(offsets) == 3
