"""Tests for the Mipsy CPU model via small systems."""

from conftest import LoopWorkload, SharingWorkload, build_system

from repro.sim.stats import StallReason  # noqa: F401  (documentation import)


def test_loop_workload_runs_to_completion():
    system = build_system("shared-mem", LoopWorkload, iterations=5)
    stats = system.run()
    assert not system.truncated
    assert all(cpu.done for cpu in system.cpus)
    assert stats.instructions > 0
    assert stats.cycles > 0


def test_one_busy_cycle_per_instruction():
    system = build_system("shared-mem", LoopWorkload, iterations=5)
    stats = system.run()
    breakdown = stats.aggregate_breakdown()
    assert breakdown.busy == stats.instructions


def test_total_breakdown_accounts_for_runtime():
    """busy + stalls per CPU is close to the CPU's finishing time."""
    system = build_system("shared-l2", LoopWorkload, iterations=5)
    stats = system.run()
    for cpu in system.cpus:
        accounted = stats.breakdowns[cpu.cpu_id].total
        assert accounted <= cpu.resume
        # Fast-forwarding means no unaccounted gaps beyond scheduling
        # skew of a few cycles per instruction.
        assert accounted >= cpu.resume * 0.9


def test_second_iteration_is_faster_than_first():
    """Warm caches: the steady-state loop runs near one IPC."""
    system = build_system(
        "shared-mem", LoopWorkload, n_cpus=1, iterations=50, array_words=16
    )
    stats = system.run()
    # 50 iterations x 16 words x 4 instructions; misses only in the
    # first iteration -> overall CPI must approach 1.
    cpi = stats.cycles / stats.instructions
    assert cpi < 1.5


def test_store_heavy_loop_does_not_stall_cpu_much():
    system = build_system(
        "shared-mem", LoopWorkload, n_cpus=1, iterations=20, array_words=16
    )
    stats = system.run()
    assert stats.aggregate_breakdown().storebuf < stats.cycles * 0.2


def test_sharing_workload_values_flow_between_cpus():
    # SharingWorkload's barrier-released reads assert internally that
    # the functional value arrives; completing is the assertion.
    system = build_system("shared-mem", SharingWorkload, rounds=3)
    system.run()
    assert all(cpu.done for cpu in system.cpus)


def test_sharing_workload_produces_invalidation_misses():
    system = build_system("shared-mem", SharingWorkload, rounds=4)
    stats = system.run()
    l1 = stats.aggregate_caches(".l1d")
    assert l1.misses_inval > 0


def test_shared_l1_has_no_invalidation_misses():
    system = build_system("shared-l1", SharingWorkload, rounds=4)
    stats = system.run()
    l1 = stats.aggregate_caches(".l1d")
    assert l1.misses_inval == 0


def test_istall_attributed_on_cold_code():
    system = build_system("shared-mem", LoopWorkload, iterations=2)
    stats = system.run()
    assert stats.aggregate_breakdown().istall > 0


def test_instruction_counts_match_across_architectures():
    """With no spin waits, all architectures run the same instructions."""
    counts = {}
    for arch in ("shared-l1", "shared-l2", "shared-mem"):
        system = build_system(arch, LoopWorkload, iterations=5)
        stats = system.run()
        counts[arch] = stats.instructions
    assert len(set(counts.values())) == 1
