"""Precision tests for Mipsy's stall attribution.

Each test constructs a single-CPU scenario where exactly one stall
source is active and checks the cycles land in the right breakdown
bucket — the foundation under every Figure 4-10 bar.
"""

from repro.core.configs import test_config as make_test_config
from repro.core.system import System
from repro.mem.functional import FunctionalMemory
from repro.workloads.base import Workload


class Script(Workload):
    """Single CPU, caller-provided generator body."""

    name = "script"

    def __init__(self, n_cpus, functional, body=None, region_slots=64):
        super().__init__(n_cpus, functional)
        self.body = body
        self.region = self.code.region("script", region_slots)
        self.array = self.data.alloc_array(256, 32)

    def program(self, cpu_id):
        if cpu_id or self.body is None:
            return
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        yield from self.body(self, em)


def run_script(body, arch="shared-mem", **config_overrides):
    functional = FunctionalMemory()
    workload = Script(1, functional, body=body)
    config = make_test_config(1)
    for key, value in config_overrides.items():
        setattr(config, key, value)
    system = System(arch, workload, mem_config=config, max_cycles=500_000)
    stats = system.run()
    return stats, stats.breakdowns[0]


def test_pure_compute_is_all_busy():
    def body(workload, em):
        em.jump(0)
        for _ in range(32):  # stay inside the first I-line fills
            yield em.ialu()

    stats, breakdown = run_script(body)
    assert breakdown.busy == stats.instructions
    assert breakdown.l2 == breakdown.mem == breakdown.c2c == 0


def test_l2_hit_stall_lands_in_l2_bucket():
    def body(workload, em):
        # Warm the line into L1+L2, evict it from L1 only, re-read.
        yield em.load(workload.array)
        way = 512 // 2  # test-scale L1: n_sets * line = way size
        for k in (1, 2):
            yield em.load(workload.array + k * way * 2)
        for _ in range(70):  # let everything settle
            yield em.ialu()
        yield em.load(workload.array)

    stats, breakdown = run_script(body)
    assert breakdown.l2 > 0


def test_memory_stall_lands_in_mem_bucket():
    def body(workload, em):
        yield em.load(workload.array)  # cold: straight to memory

    _stats, breakdown = run_script(body)
    assert breakdown.mem >= 50  # at least the DRAM latency


def test_posted_store_does_not_stall():
    def body(workload, em):
        for i in range(4):
            yield em.store(workload.array + 32 * i)

    _stats, breakdown = run_script(body)
    # The stores miss cold but the CPU never waits for them.
    assert breakdown.mem == 0
    assert breakdown.storebuf == 0


def test_istall_counts_cold_code():
    def body(workload, em):
        em.jump(0)
        for _ in range(60):  # spans several I-lines
            yield em.ialu()

    _stats, breakdown = run_script(body)
    assert breakdown.istall > 0


def test_shared_l1_crossbar_latency_hidden_by_optimism():
    def body(workload, em):
        yield em.load(workload.array)
        for _ in range(70):
            yield em.ialu()
        yield em.load(workload.array)  # warm hit

    # Mipsy: optimistic -> second load costs one cycle, no L1 stall.
    _stats, breakdown = run_script(body, arch="shared-l1")
    assert breakdown.l1d == 0


def test_c2c_attribution_on_shared_mem():
    """A dirty remote line read lands in the cache-to-cache bucket."""

    class TwoCpu(Workload):
        name = "two"

        def __init__(self, n_cpus, functional):
            super().__init__(n_cpus, functional)
            self.region = self.code.region("two", 32)
            self.line = self.data.alloc_line()
            self.flag = self.data.alloc_line()

        def program(self, cpu_id):
            ctx = self.context(cpu_id)
            em = ctx.emitter(self.region)
            if cpu_id == 0:
                yield em.store(self.line, value=1)
                yield em.store(self.flag, value=1)
            else:
                em.jump(8)
                spin = em.label()
                while True:
                    observed = yield em.load(self.flag, want_value=True)
                    if observed:
                        yield em.branch(False)
                        break
                    yield em.branch(True, to=spin)
                yield em.load(self.line)

    functional = FunctionalMemory()
    workload = TwoCpu(2, functional)
    system = System(
        "shared-mem", workload, mem_config=make_test_config(2),
        max_cycles=500_000,
    )
    stats = system.run()
    assert stats.breakdowns[1].c2c > 0
    assert stats.c2c_transfers >= 1
