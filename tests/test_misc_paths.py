"""Targeted tests for less-travelled paths across the package."""

import pytest

from conftest import LoopWorkload, SharingWorkload, build_system

from repro.core.configs import test_config as make_test_config
from repro.core.selfcheck import CHECKS, SelfCheckFailure, run_selfcheck
from repro.core.system import System
from repro.errors import ConfigError, ProtocolError, ReproError, WorkloadError
from repro.mem.cache import LineState
from repro.mem.functional import FunctionalMemory
from repro.mem.shared_mem import SharedMemorySystem
from repro.mem.types import AccessKind, StallLevel
from repro.sim.stats import SystemStats
from repro.workloads.base import Workload
from repro.workloads.kernel import KernelActivity

ADDR = 0x1000_0000


# ----------------------------------------------------------------------
# shared-memory: the L2-hit-shared store path (upgrade below the L1)


def test_store_miss_with_l2_shared_copy_upgrades():
    stats = SystemStats.for_cpus(4)
    system = SharedMemorySystem(make_test_config(), stats)
    # Two CPUs read: both L2s hold the line SHARED.
    system.access(0, AccessKind.LOAD, ADDR, 0)
    system.access(1, AccessKind.LOAD, ADDR, 200)
    # Evict CPU 0's L1 copy only (keep its L2 copy).
    way = system.l1d[0].n_sets * system.config.line_size
    t = 400
    for k in range(1, system.l1d[0].assoc + 1):
        t = system.access(0, AccessKind.LOAD, ADDR + k * way, t).done
    assert not system.l1d[0].contains(ADDR)
    assert system.l2[0].state_of(ADDR) == LineState.SHARED
    # The store misses L1, hits L2 in SHARED: an upgrade transaction.
    upgrades_before = system.bus.upgrades
    system.access(0, AccessKind.STORE_COND, ADDR, t + 100)
    assert system.bus.upgrades == upgrades_before + 1
    assert system.l2[0].state_of(ADDR) == LineState.MODIFIED
    assert not system.l2[1].contains(ADDR)


# ----------------------------------------------------------------------
# kernel activity generators


def _drain_kernel(generator):
    value = None
    feed = 0
    out = []
    while True:
        try:
            inst = (
                generator.send(value) if value is not None
                else next(generator)
            )
        except StopIteration:
            return out
        value = None
        if inst.want_value:
            feed += 1
            value = (0, 1)[feed % 2]
        out.append(inst)


def test_kernel_sys_read_copies_buffer_to_user():
    from repro.isa.codegen import CodeSpace
    from repro.workloads.base import ThreadContext
    from repro.workloads.layout import AddressSpace

    code = CodeSpace()
    kernel = KernelActivity(code, AddressSpace(base=0x8001_0000))
    ctx = ThreadContext(0)
    user_buffer = 0x2000_0000
    instructions = _drain_kernel(kernel.sys_read(ctx, 3, user_buffer))
    loads = [i for i in instructions if i.is_load and not i.want_value]
    stores = [
        i for i in instructions
        if i.is_store and i.value is None and i.addr >= user_buffer
    ]
    # The copy loop: kernel-buffer loads, user-buffer stores.
    assert len(stores) == kernel.buffer_words
    assert any(i.addr >= 0x8001_0000 for i in loads)
    assert kernel.syscalls == 1


def test_kernel_sys_write_copies_user_to_buffer():
    from repro.isa.codegen import CodeSpace
    from repro.workloads.base import ThreadContext
    from repro.workloads.layout import AddressSpace

    code = CodeSpace()
    kernel = KernelActivity(code, AddressSpace(base=0x8001_0000))
    ctx = ThreadContext(1)
    instructions = _drain_kernel(kernel.sys_write(ctx, 0, 0x2000_0000))
    kernel_stores = [
        i for i in instructions
        if i.is_store and i.value is None and i.addr >= 0x8001_0000
    ]
    assert len(kernel_stores) == kernel.buffer_words


def test_kernel_sched_tick_walks_run_queue():
    from repro.isa.codegen import CodeSpace
    from repro.workloads.base import ThreadContext
    from repro.workloads.layout import AddressSpace

    code = CodeSpace()
    kernel = KernelActivity(code, AddressSpace(base=0x8001_0000))
    ctx = ThreadContext(2)
    instructions = _drain_kernel(kernel.sched_tick(ctx))
    run_queue_touches = [
        i for i in instructions
        if i.is_memory and kernel.runqueue_base <= i.addr
        < kernel.runqueue_base + kernel.runqueue_entries * 32
    ]
    assert len(run_queue_touches) == 2 * kernel.runqueue_entries
    assert kernel.sched_ticks == 1


def test_kernel_text_is_shared_across_contexts():
    from repro.isa.codegen import CodeSpace
    from repro.workloads.base import ThreadContext
    from repro.workloads.layout import AddressSpace

    code = CodeSpace()
    kernel = KernelActivity(code, AddressSpace(base=0x8001_0000))
    pcs = []
    for cpu in range(2):
        ctx = ThreadContext(cpu)
        instructions = _drain_kernel(kernel.sys_read(ctx, 0, 0x2000_0000))
        pcs.append([i.pc for i in instructions if not i.want_value][:10])
    assert pcs[0] == pcs[1]  # same kernel routine, same addresses


# ----------------------------------------------------------------------
# selfcheck machinery


def test_selfcheck_passes():
    assert run_selfcheck(verbose=False)


def test_selfcheck_names_are_unique():
    names = [name for name, _check in CHECKS]
    assert len(names) == len(set(names))


def test_selfcheck_failure_is_reported(monkeypatch, capsys):
    import repro.core.selfcheck as sc

    def broken():
        raise SelfCheckFailure("deliberately broken")

    monkeypatch.setattr(
        sc, "CHECKS", (("broken", broken),) + tuple(sc.CHECKS[:1])
    )
    assert not sc.run_selfcheck()
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "deliberately broken" in out


# ----------------------------------------------------------------------
# trace of synchronizing workloads


def test_recording_sync_workload_round_trips(tmp_path):
    from repro.trace.format import read_trace
    from repro.trace.recorder import record_run

    system = build_system("shared-l2", SharingWorkload, rounds=2)
    recorder = record_run(system, tmp_path / "sync.trace")
    # SCs were recorded (as plain stores on reload).
    reloaded = list(read_trace(tmp_path / "sync.trace"))
    assert len(reloaded) == len(recorder)
    kinds = {record.kind for record in reloaded}
    assert AccessKind.STORE in kinds


# ----------------------------------------------------------------------
# error taxonomy


def test_all_errors_derive_from_repro_error():
    for exc in (ConfigError, WorkloadError, ProtocolError):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("x")


# ----------------------------------------------------------------------
# emitter long-division ops reach the CPU models


class _FpWorkload(Workload):
    name = "fp"

    def __init__(self, n_cpus, functional):
        super().__init__(n_cpus, functional)
        self.region = self.code.region("fp", 32)

    def program(self, cpu_id):
        if cpu_id:
            return
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        for _ in range(10):
            yield em.fdiv(dp=True, src1=1)
            yield em.idiv(src1=1)
            yield em.imul(src1=1)
            yield em.fmul(dp=False, src1=1)


def test_long_latency_ops_slow_mxs_but_not_mipsy():
    functional = FunctionalMemory()
    mipsy = System(
        "shared-mem", _FpWorkload(1, functional),
        mem_config=make_test_config(1),
    )
    mipsy_stats = mipsy.run()

    functional = FunctionalMemory()
    mxs = System(
        "shared-mem", _FpWorkload(1, functional), cpu_model="mxs",
        mem_config=make_test_config(1),
    )
    mxs_stats = mxs.run()
    # Mipsy: 1 cycle per instruction; MXS pays the Table-1 latencies
    # on the dependent chain.
    mipsy_breakdown = mipsy_stats.aggregate_breakdown()
    assert mipsy_breakdown.busy == mipsy_stats.instructions
    assert mxs_stats.cycles > mipsy_breakdown.busy
