"""Tests for the miss status holding registers."""

import pytest

from repro.errors import SimulationError
from repro.mem.mshr import MshrFile


def test_allocate_until_full():
    mshrs = MshrFile(capacity=2)
    assert mshrs.allocate(1, done=50)
    assert mshrs.allocate(2, done=60)
    assert mshrs.full
    assert not mshrs.allocate(3, done=70)
    assert mshrs.full_stalls == 1


def test_probe_finds_inflight_line():
    mshrs = MshrFile(capacity=4)
    mshrs.allocate(7, done=42)
    assert mshrs.probe(7) == 42
    assert mshrs.probe(8) is None


def test_merge_same_line_keeps_earlier_completion():
    mshrs = MshrFile(capacity=1)
    mshrs.allocate(7, done=42)
    assert mshrs.allocate(7, done=99)  # merge, not a new entry
    assert mshrs.probe(7) == 42
    assert mshrs.merges == 1
    assert mshrs.outstanding == 1


def test_retire_frees_completed():
    mshrs = MshrFile(capacity=2)
    mshrs.allocate(1, done=10)
    mshrs.allocate(2, done=20)
    mshrs.retire(15)
    assert mshrs.outstanding == 1
    assert mshrs.probe(1) is None
    assert mshrs.probe(2) == 20


def test_earliest_completion():
    mshrs = MshrFile(capacity=4)
    assert mshrs.earliest_completion() is None
    mshrs.allocate(1, done=30)
    mshrs.allocate(2, done=10)
    assert mshrs.earliest_completion() == 10


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        MshrFile(capacity=0)
