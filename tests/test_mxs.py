"""Tests for the MXS dynamic superscalar model."""

from conftest import LoopWorkload, SharingWorkload, build_system

from repro.cpu.mxs.btb import BranchTargetBuffer
from repro.cpu.mxs.funits import FunctionalUnits
from repro.isa.instructions import OpClass


# ----------------------------------------------------------------------
# BTB


def test_btb_default_predicts_not_taken():
    btb = BranchTargetBuffer(16)
    assert btb.predict(0x400000) == (False, 0)


def test_btb_learns_taken_branch():
    btb = BranchTargetBuffer(16)
    btb.update(0x400000, taken=True, target=0x400100)
    taken, target = btb.predict(0x400000)
    assert taken and target == 0x400100


def test_btb_counter_hysteresis():
    btb = BranchTargetBuffer(16)
    btb.update(0x400000, taken=True, target=0x400100)
    btb.update(0x400000, taken=True, target=0x400100)  # counter -> 3
    btb.update(0x400000, taken=False, target=0)        # counter -> 2
    taken, _ = btb.predict(0x400000)
    assert taken  # still predicts taken after one not-taken


def test_btb_correct_checks_target_too():
    btb = BranchTargetBuffer(16)
    btb.update(0x400000, taken=True, target=0x400100)
    assert btb.correct(0x400000, True, 0x400100)
    assert not btb.correct(0x400000, True, 0x999999)
    assert not btb.correct(0x400000, False, 0)


def test_btb_untaken_branches_not_allocated():
    btb = BranchTargetBuffer(16)
    btb.update(0x400000, taken=False, target=0)
    assert btb.correct(0x400000, False, 0)  # default not-taken is right


def test_btb_aliasing_is_direct_mapped():
    btb = BranchTargetBuffer(16)
    btb.update(0x400000, taken=True, target=0x400100)
    # 16 entries, pc>>2 indexing: +64*4 bytes aliases the same entry.
    alias = 0x400000 + 16 * 4
    btb.update(alias, taken=True, target=0x500000)
    taken, target = btb.predict(0x400000)
    assert not taken or target != 0x400100  # evicted by the alias


# ----------------------------------------------------------------------
# functional units


def test_two_alus_per_cycle():
    fus = FunctionalUnits()
    assert fus.try_issue(OpClass.IALU, cycle=1)
    assert fus.try_issue(OpClass.IALU, cycle=1)
    assert not fus.try_issue(OpClass.IALU, cycle=1)
    assert fus.structural_stalls == 1
    # next cycle resets
    assert fus.try_issue(OpClass.IALU, cycle=2)


def test_single_memory_port():
    fus = FunctionalUnits()
    assert fus.try_issue(OpClass.LOAD, cycle=1)
    assert not fus.try_issue(OpClass.STORE, cycle=1)  # same mem port


def test_kinds_are_independent():
    fus = FunctionalUnits()
    assert fus.try_issue(OpClass.IALU, cycle=1)
    assert fus.try_issue(OpClass.IALU, cycle=1)
    assert fus.try_issue(OpClass.FMUL_DP, cycle=1)
    assert fus.try_issue(OpClass.LOAD, cycle=1)


# ----------------------------------------------------------------------
# pipeline end-to-end


def test_mxs_runs_loop_workload():
    system = build_system(
        "shared-mem", LoopWorkload, cpu_model="mxs", iterations=5
    )
    stats = system.run()
    assert all(cpu.done for cpu in system.cpus)
    assert stats.instructions > 0
    for mxs in stats.mxs:
        assert mxs.graduated > 0
        assert 0 < mxs.ipc <= 2.0


def test_mxs_instruction_count_matches_mipsy():
    mxs_sys = build_system(
        "shared-l1", LoopWorkload, cpu_model="mxs", iterations=4
    )
    mipsy_sys = build_system(
        "shared-l1", LoopWorkload, cpu_model="mipsy", iterations=4
    )
    assert mxs_sys.run().instructions == mipsy_sys.run().instructions


def test_mxs_overlaps_independent_work():
    """Dynamic scheduling beats the blocking model on the same program."""
    mxs_sys = build_system(
        "shared-mem", LoopWorkload, cpu_model="mxs", n_cpus=1, iterations=30
    )
    mipsy_sys = build_system(
        "shared-mem", LoopWorkload, cpu_model="mipsy", n_cpus=1, iterations=30
    )
    assert mxs_sys.run().cycles < mipsy_sys.run().cycles


def test_mxs_shared_l1_uses_full_hit_latency():
    """Under MXS the shared-L1 optimism must be off."""
    system = build_system(
        "shared-l1", LoopWorkload, cpu_model="mxs", iterations=3
    )
    assert not system.config.shared_l1_optimistic
    system.run()
    # The extra hit latency shows up as pipeline-stall slots.
    assert sum(m.slots_lost_pipeline for m in system.stats.mxs) > 0


def test_mxs_counts_branches_and_mispredicts():
    system = build_system(
        "shared-mem", LoopWorkload, cpu_model="mxs", iterations=5
    )
    stats = system.run()
    total_branches = sum(m.branches for m in stats.mxs)
    total_mispredicts = sum(m.mispredicts for m in stats.mxs)
    assert total_branches > 0
    assert 0 < total_mispredicts < total_branches  # BTB learns the loop


def test_mxs_synchronization_works():
    system = build_system(
        "shared-mem", SharingWorkload, cpu_model="mxs", rounds=2
    )
    system.run()
    assert all(cpu.done for cpu in system.cpus)


def test_mxs_slot_accounting_is_complete():
    system = build_system(
        "shared-l2", LoopWorkload, cpu_model="mxs", iterations=5
    )
    stats = system.run()
    width = 2
    for mxs in stats.mxs:
        assert mxs.slots_total == width * mxs.cycles


def test_mxs_rob_bounded():
    system = build_system(
        "shared-mem", LoopWorkload, cpu_model="mxs", n_cpus=1, iterations=3
    )
    rob_limit = system.cpus[0].params.rob
    max_seen = 0

    original_tick = type(system.cpus[0]).tick

    def spy(self, cycle):
        nonlocal max_seen
        max_seen = max(max_seen, len(self.rob))
        original_tick(self, cycle)

    type(system.cpus[0]).tick = spy
    try:
        system.run()
    finally:
        type(system.cpus[0]).tick = original_tick
    assert 0 < max_seen <= rob_limit
