"""Micro-architecture validation: deterministic programs through MXS.

Each test builds a tiny, fully-controlled instruction sequence and
checks a specific pipeline behaviour: dual issue, dependency
serialization, the single memory port, non-blocking misses (MSHR
overlap and merging), branch-misprediction refill, and window-fill
behaviour. These pin the MXS model against Section 2.1's description.
"""

import pytest

from repro.core.configs import CpuParams
from repro.core.configs import test_config as make_test_config
from repro.core.system import System
from repro.isa.instructions import OpClass
from repro.mem.functional import FunctionalMemory
from repro.workloads.base import Workload


class MicroWorkload(Workload):
    """One CPU runs a caller-supplied list of emitter directives.

    ``repeats`` re-runs the script at the same PCs (and addresses), so
    steady-state behaviour dominates over cold-start I-cache misses.
    """

    name = "micro"

    def __init__(self, n_cpus, functional, script=None, region_slots=256,
                 repeats=1):
        super().__init__(n_cpus, functional)
        self.script = script or []
        self.repeats = repeats
        self.region = self.code.region("micro", region_slots)
        self.array = self.data.alloc_array(512, 32)

    def program(self, cpu_id):
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        if cpu_id:
            return
        for _rep in range(self.repeats):
            em.jump(0)
            for step in self.script:
                kind = step[0]
                if kind == "op":
                    yield em.op(step[1], src1=step[2] if len(step) > 2 else 0)
                elif kind == "load":
                    yield em.load(self.array + step[1] * 32, src1=0)
                elif kind == "load_dep":
                    yield em.load(self.array + step[1] * 32, src1=step[2])
                elif kind == "store":
                    yield em.store(self.array + step[1] * 32)
                elif kind == "loop":
                    count, body = step[1], step[2]
                    for i in range(count):
                        top = em.label()
                        for sub in body:
                            yield em.op(sub)
                        yield em.branch(i < count - 1, to=top)
                else:
                    raise AssertionError(kind)


def run_micro(script, repeats=1, **cpu_kwargs):
    functional = FunctionalMemory()
    workload = MicroWorkload(1, functional, script=script, repeats=repeats)
    config = make_test_config(1)
    system = System(
        "shared-mem",
        workload,
        cpu_model="mxs",
        mem_config=config,
        cpu_params=CpuParams(**cpu_kwargs) if cpu_kwargs else None,
    )
    stats = system.run()
    return stats, system


def test_independent_alus_dual_issue():
    """Independent ALU ops: IPC approaches the 2-wide limit."""
    stats, _ = run_micro([("op", OpClass.IALU)] * 24, repeats=100)
    mxs = stats.mxs[0]
    assert mxs.ipc > 1.6


def test_dependent_chain_serializes():
    """A dependent ALU chain runs at 1 IPC regardless of width."""
    stats, _ = run_micro([("op", OpClass.IALU, 1)] * 24, repeats=50)
    mxs = stats.mxs[0]
    assert 0.8 < mxs.ipc < 1.1


def test_dependent_fp_chain_runs_at_latency():
    """Dependent DP divides: one result every 18 cycles."""
    stats, _ = run_micro([("op", OpClass.FDIV_DP, 1)] * 30, repeats=5)
    mxs = stats.mxs[0]
    cpi = mxs.cycles / mxs.graduated
    assert 15 < cpi < 20


def test_memory_port_limits_issue():
    """Independent loads to one hot line: at most 1 per cycle."""
    script = [("load", 0)] * 24
    stats, _ = run_micro(script, repeats=40)
    mxs = stats.mxs[0]
    assert mxs.ipc <= 1.05


def test_mixed_alu_and_loads_beat_one_ipc():
    """A load + ALU mix can use both the port and an ALU per cycle."""
    script = []
    for _ in range(12):
        script.append(("load", 0))
        script.append(("op", OpClass.IALU))
    stats, _ = run_micro(script, repeats=60)
    assert stats.mxs[0].ipc > 1.2


def test_nonblocking_misses_overlap():
    """Independent loads to distinct cold lines overlap their misses
    (the 4-MSHR non-blocking cache), so the total time is far below
    the sum of serial miss latencies."""
    script = [("load", i * 7) for i in range(12)]
    stats, _ = run_micro(script)
    serial = 12 * 60  # 12 misses at ~60+ cycles each
    assert stats.cycles < 0.6 * serial


def test_single_mshr_serializes_misses():
    """With one MSHR the same program degrades toward serial misses."""
    script = [("load", i * 7) for i in range(12)]
    _, fast_system = run_micro(script)
    stats_slow, _ = run_micro(script, mshrs=1)
    assert stats_slow.cycles > fast_system.stats.cycles * 1.5


def test_mshr_merge_same_line():
    """Two loads to the same cold line: one fill, both complete with it."""
    stats, system = run_micro([("load", 0), ("load", 0)])
    assert system.cpus[0].mshrs.merges >= 1


def test_loop_branches_predicted_after_warmup():
    """A hot loop mispredicts at the start and the exit, not per trip."""
    stats, _ = run_micro([("loop", 50, [OpClass.IALU] * 4)], repeats=2)
    mxs = stats.mxs[0]
    assert mxs.branches >= 100
    assert mxs.mispredicts <= 8


def test_mispredicts_cost_cycles():
    """Alternate taken/not-taken branches (unpredictable by a 2-bit
    counter at one PC) run slower than a well-predicted loop."""
    predictable = run_micro([("loop", 60, [OpClass.IALU] * 2)])[0]

    # An alternating branch at a single PC: build with raw directives.
    class Alternating(MicroWorkload):
        def program(self, cpu_id):
            if cpu_id:
                return
            ctx = self.context(cpu_id)
            em = ctx.emitter(self.region)
            for i in range(60):
                em.jump(0)
                yield em.ialu()
                yield em.ialu()
                yield em.branch(i % 2 == 0, to=3)

    functional = FunctionalMemory()
    workload = Alternating(1, functional)
    system = System(
        "shared-mem", workload, cpu_model="mxs", mem_config=make_test_config(1)
    )
    unpredictable = system.run()
    per_inst_fast = predictable.cycles / predictable.instructions
    per_inst_slow = unpredictable.cycles / unpredictable.instructions
    assert per_inst_slow > per_inst_fast * 1.3
    assert sum(m.mispredicts for m in unpredictable.mxs) > 20


def test_rob_drains_at_end():
    stats, system = run_micro([("op", OpClass.IALU)] * 10)
    assert len(system.cpus[0].rob) == 0
    assert stats.instructions == 10


def test_fetch_width_bounds_throughput():
    """A 1-wide fetch cannot exceed 1 IPC even on independent ops."""
    stats, _ = run_micro(
        [("op", OpClass.IALU)] * 100, fetch_width=1
    )
    assert stats.mxs[0].ipc <= 1.02


def test_narrow_window_hurts_memory_overlap():
    """A 4-entry window cannot hold enough loads to overlap misses."""
    script = [("load", i * 7) for i in range(10)]
    wide, _ = run_micro(script)
    narrow, _ = run_micro(script, window=4, rob=4)
    assert narrow.cycles > wide.cycles

def test_wrong_path_fetch_pollutes_and_slows():
    """With wrong-path fetch on, unpredictable branches cost more
    (I-cache pollution + refill traffic) and squashed slots appear."""

    class Alternating(MicroWorkload):
        def program(self, cpu_id):
            if cpu_id:
                return
            ctx = self.context(cpu_id)
            em = ctx.emitter(self.region)
            for i in range(120):
                em.jump(0)
                yield em.ialu()
                yield em.ialu()
                yield em.branch(i % 2 == 0, to=3)

    def run(wrong_path):
        functional = FunctionalMemory()
        workload = Alternating(1, functional)
        system = System(
            "shared-mem",
            workload,
            cpu_model="mxs",
            mem_config=make_test_config(1),
            cpu_params=CpuParams(wrong_path_fetch=wrong_path),
        )
        return system.run(), system

    clean_stats, _ = run(False)
    dirty_stats, _ = run(True)
    assert sum(m.squashed for m in clean_stats.mxs) == 0
    assert sum(m.squashed for m in dirty_stats.mxs) > 0
    assert dirty_stats.cycles >= clean_stats.cycles


def test_wrong_path_fetch_off_by_default():
    assert not CpuParams().wrong_path_fetch


def test_window_occupancy_tracked():
    stats, _ = run_micro([("load", i * 7) for i in range(12)])
    mxs = stats.mxs[0]
    assert 0 < mxs.mean_window_occupancy <= 32
    # Overlapping misses keep several instructions in flight.
    assert mxs.mean_window_occupancy > 1.5


def test_issue_count_equals_graduated():
    stats, _ = run_micro([("op", OpClass.IALU)] * 30)
    mxs = stats.mxs[0]
    assert mxs.issued == mxs.graduated == 30


def test_fetch_stall_fraction_rises_with_cold_code():
    cold, _ = run_micro([("op", OpClass.IALU)] * 200)       # one pass
    warm, _ = run_micro([("op", OpClass.IALU)] * 24, repeats=100)
    assert (
        cold.mxs[0].fetch_stall_fraction
        > warm.mxs[0].fetch_stall_fraction
    )
