"""Tests for the observability subsystem (repro.obs).

The load-bearing property is the overhead contract: attaching
observability must not change a single simulated statistic — the
differential suite below runs every architecture x CPU model with and
without observation and requires bit-identical ``SystemStats``. On top
of that: the Perfetto trace must be schema-valid with monotonic
timestamps per track, the sampler's series must cover exactly
``cycles // interval`` boundaries, and the shadow crossbar must surface
the bank contention the optimistic shared-L1 path hides.
"""

from __future__ import annotations

import json

import pytest

from conftest import SharingWorkload

from repro.cli import main
from repro.core.experiment import run_one
from repro.core.runner import Job, Runner
from repro.core.configs import config_for_scale
from repro.core.system import System
from repro.mem.functional import FunctionalMemory
from repro.obs import (
    DEFAULT_SAMPLE_INTERVAL,
    EventTimeline,
    ObsConfig,
    Registry,
    UtilizationSampler,
    validate_trace,
)
from repro.obs.report import format_phase_table, phase_means, run_observed
from repro.workloads import WORKLOADS

ARCHS = ("shared-l1", "shared-l2", "shared-mem")
CPU_MODELS = ("mipsy", "mxs")
CAP = 2_000_000


# ----------------------------------------------------------------------
# registry


def test_counter_and_gauge():
    registry = Registry()
    counter = registry.counter("x")
    counter.inc()
    counter.inc(4)
    registry.gauge("g").set(7)
    assert registry.counter("x") is counter
    snap = registry.snapshot()
    assert snap["counters"] == {"x": 5}
    assert snap["gauges"] == {"g": 7}


def test_histogram_buckets_are_log2():
    registry = Registry()
    hist = registry.histogram("h")
    for value in (0, 1, 2, 3, 4, 1000):
        hist.observe(value)
    assert hist.count == 6
    assert hist.total == 1010
    assert hist.mean == pytest.approx(1010 / 6)
    # 0 -> "0", 1 -> "1-1", 2..3 -> "2-3", 4 -> "4-7", 1000 -> "512-1023".
    assert hist.nonzero_buckets() == {
        "0": 1, "1-1": 1, "2-3": 2, "4-7": 1, "512-1023": 1,
    }


# ----------------------------------------------------------------------
# sampler


def test_sampler_series_cover_every_interval():
    sampler = UtilizationSampler(100)
    ticks = {"n": 0}
    sampler.add_rate("ticks", lambda: ticks["n"])
    sampler.add_gauge("level", lambda: 3)
    for cycle in range(0, 950):
        if cycle >= sampler.next_boundary:
            sampler.sample_until(cycle)
        ticks["n"] += 1
    sampler.finalize(950)
    assert sampler.n_samples == 950 // 100
    assert sampler.boundaries == [100 * (i + 1) for i in range(9)]
    assert sampler.series["ticks"] == pytest.approx([1.0] * 9)
    assert sampler.series["level"] == [3] * 9


def test_sampler_rollup_mean_max():
    sampler = UtilizationSampler(10)
    values = iter([5, 15])
    total = {"n": 0}

    def probe():
        return total["n"]

    sampler.add_rate("r", probe)
    total["n"] = 5
    sampler.sample_until(10)
    total["n"] = 20
    sampler.sample_until(20)
    rollup = sampler.rollup()
    assert rollup["r"]["mean"] == pytest.approx(1.0)
    assert rollup["r"]["max"] == pytest.approx(1.5)


# ----------------------------------------------------------------------
# timeline


def test_timeline_drops_beyond_max_events():
    timeline = EventTimeline(max_events=2)
    track = timeline.track("cpu0")
    timeline.emit(track, "a", "mem", 1, 5)
    timeline.emit(track, "b", "mem", 2, 5)
    timeline.emit(track, "c", "mem", 3, 5)
    assert timeline.emitted == 2
    assert timeline.dropped == 1
    data = timeline.to_chrome("x")
    xs = [ev for ev in data["traceEvents"] if ev["ph"] == "X"]
    assert [ev["name"] for ev in xs] == ["a", "b"]


def test_validate_trace_accepts_own_output(tmp_path):
    timeline = EventTimeline()
    a = timeline.track("cpu0")
    b = timeline.track("bus")
    # Emitted out of order on purpose: export sorts per track.
    timeline.emit(a, "late", "mem", 50, 3)
    timeline.emit(b, "bus", "bus", 10, 2)
    timeline.emit(a, "early", "mem", 5, 1)
    path = tmp_path / "trace.json"
    timeline.write(path, "label")
    assert validate_trace(path) == []


def test_validate_trace_flags_broken_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [
        {"name": "a", "cat": "c", "ph": "X", "ts": 5, "dur": 1,
         "pid": 1, "tid": 1},
        {"name": "b", "cat": "c", "ph": "X", "ts": 2, "dur": 1,
         "pid": 1, "tid": 1},
    ]}))
    errors = validate_trace(bad)
    assert errors and any("monotonic" in e or "ts" in e for e in errors)
    bad.write_text("[]")
    assert validate_trace(bad)
    bad.write_text("not json")
    assert validate_trace(bad)


# ----------------------------------------------------------------------
# the overhead contract: observation changes no statistic


def _stats(arch, cpu_model, obs):
    result = run_one(
        arch,
        WORKLOADS["eqntott"],
        cpu_model=cpu_model,
        scale="test",
        max_cycles=CAP,
        obs=obs,
    )
    return result


@pytest.mark.parametrize("cpu_model", CPU_MODELS)
@pytest.mark.parametrize("arch", ARCHS)
def test_observation_is_behaviorally_invisible(arch, cpu_model):
    plain = _stats(arch, cpu_model, None)
    observed = _stats(
        arch, cpu_model, ObsConfig(sample_interval=500, events=True)
    )
    assert observed.stats.cycles == plain.stats.cycles
    assert observed.stats.to_dict() == plain.stats.to_dict()
    assert "obs" in observed.extras
    assert "obs" not in plain.extras


def test_obs_rollup_shape_and_series_length():
    system, stats = run_observed(
        "eqntott", "shared-l1", sample_interval=250, max_cycles=CAP
    )
    sampler = system.obs.sampler
    expected = stats.cycles // 250
    assert sampler.n_samples == expected
    for name, series in sampler.series.items():
        assert len(series) == expected, name
    rollup = system.obs.rollup()
    assert rollup["sample_interval"] == 250
    assert rollup["samples"] == expected
    assert set(rollup) >= {"utilization", "metrics", "log"}
    events = [entry["event"] for entry in rollup["log"]]
    assert events[0] == "run.start" and events[-1] == "run.end"


def test_shadow_crossbar_reports_hidden_contention():
    # The acceptance scenario: eqntott, shared-L1, Mipsy. The
    # optimistic timing never consults the crossbar, so non-zero
    # conflict and bank-occupancy numbers can only come from the
    # obs-only shadow crossbar.
    system, stats = run_observed(
        "eqntott", "shared-l1", sample_interval=250, max_cycles=CAP
    )
    util = system.obs.rollup()["utilization"]
    assert util["l1.xbar.conflict"]["mean"] > 0
    assert util["l1.xbar.grants"]["mean"] > 0
    assert sum(
        util[f"l1.bank{i}.busy"]["mean"] for i in range(4)
    ) > 0
    # ... and none of it altered the simulated machine.
    plain = run_one(
        "shared-l1", WORKLOADS["eqntott"], scale="test", max_cycles=CAP
    )
    assert stats.to_dict() == plain.stats.to_dict()


def test_observed_trace_is_perfetto_valid(tmp_path):
    path = tmp_path / "events.json"
    run_observed(
        "eqntott",
        "shared-l1",
        sample_interval=500,
        events_path=str(path),
        max_cycles=CAP,
    )
    assert validate_trace(path) == []
    data = json.loads(path.read_text())
    xs = [ev for ev in data["traceEvents"] if ev["ph"] == "X"]
    assert xs
    # One metadata track name per CPU at minimum.
    names = {
        ev["args"]["name"]
        for ev in data["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert {"cpu0", "cpu1", "cpu2", "cpu3"} <= names
    # Timestamps are monotonic within each (pid, tid) track.
    last = {}
    for ev in xs:
        key = (ev["pid"], ev["tid"])
        assert ev["ts"] >= last.get(key, 0)
        last[key] = ev["ts"]


def test_sync_waits_recorded_for_contended_barrier():
    functional = FunctionalMemory()
    workload = SharingWorkload(4, functional)
    system = System(
        "shared-l2",
        workload,
        mem_config=config_for_scale("test", 4),
        max_cycles=CAP,
        obs=ObsConfig(sample_interval=500, events=True),
    )
    system.run()
    hists = system.obs.registry.snapshot()["histograms"]
    assert "sync.wait" in hists
    assert hists["sync.wait"]["count"] > 0


def test_phase_means_partition_the_run():
    system, _stats = run_observed(
        "eqntott", "shared-l1", sample_interval=250, max_cycles=CAP
    )
    sampler = system.obs.sampler
    ends, means = phase_means(sampler, 4)
    assert len(ends) <= 4
    for row in means.values():
        assert len(row) == len(ends)
    table = format_phase_table(sampler, phases=4)
    assert "cpu0.busy" in table
    assert "l1.xbar.conflict" in table


# ----------------------------------------------------------------------
# runner / report plumbing


def test_job_obs_sample_flows_through_runner():
    job = Job(
        arch="shared-l1",
        workload="eqntott",
        scale="test",
        max_cycles=CAP,
        obs_sample=500,
    )
    assert job.spec()["obs_sample"] == 500
    report = Runner(jobs=1).run([job])
    result = report.outcomes[0].result
    assert result.extras["obs"]["sample_interval"] == 500
    per_job = report.to_dict()["per_job"][0]
    assert per_job["obs"]["sample_interval"] == 500
    assert per_job["obs"]["utilization"]


def test_obs_rollup_survives_the_result_cache(tmp_path):
    from repro.core.runner import ResultCache

    job = Job(
        arch="shared-l1",
        workload="eqntott",
        scale="test",
        max_cycles=CAP,
        obs_sample=500,
    )
    cache = ResultCache(tmp_path / "cache")
    first = Runner(jobs=1, cache=cache).run([job])
    second = Runner(jobs=1, cache=cache).run([job])
    assert second.cache_hits == 1
    assert (
        second.outcomes[0].result.extras["obs"]["utilization"]
        == first.outcomes[0].result.extras["obs"]["utilization"]
    )
    # Unobserved jobs hash differently: no cross-contamination.
    plain = Job(
        arch="shared-l1", workload="eqntott", scale="test", max_cycles=CAP
    )
    assert plain.key() != job.key()


def test_obs_off_is_the_default():
    result = run_one(
        "shared-l1", WORKLOADS["eqntott"], scale="test", max_cycles=CAP
    )
    assert "obs" not in result.extras
    system = System(
        "shared-l1",
        WORKLOADS["eqntott"](4, FunctionalMemory(), "test"),
    )
    assert system.obs is None
    assert system.config.l1_fast_path is True


def test_obs_forces_fast_lane_off():
    system = System(
        "shared-l1",
        WORKLOADS["eqntott"](4, FunctionalMemory(), "test"),
        obs=ObsConfig(sample_interval=500),
    )
    assert system.config.l1_fast_path is False


# ----------------------------------------------------------------------
# CLI


def test_cli_run_with_events_and_sampling(tmp_path, capsys):
    path = tmp_path / "ev.json"
    code = main([
        "run", "-w", "eqntott", "-a", "shared-l1", "-s", "test",
        "--sample-interval", "500", "--events", str(path),
        "--max-cycles", str(CAP),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "sampled series" in out
    assert f"events written to {path}" in out
    assert validate_trace(path) == []


def test_cli_run_profile_out(tmp_path, capsys):
    path = tmp_path / "profile.txt"
    code = main([
        "run", "-w", "eqntott", "-a", "shared-l1", "-s", "test",
        "--profile-out", str(path), "--max-cycles", str(CAP),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert f"profile written to {path}" in out
    assert "cumulative" in path.read_text()


def test_cli_obs_report(capsys):
    code = main([
        "obs", "report", "-w", "eqntott", "-a", "shared-l1", "-s", "test",
        "--sample-interval", "250", "--phases", "4",
        "--max-cycles", str(CAP),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "phase end" in out
    assert "l1.xbar.conflict" in out


def test_cli_obs_validate(tmp_path, capsys):
    good = tmp_path / "good.json"
    run_observed(
        "eqntott", "shared-l1", events_path=str(good), max_cycles=CAP
    )
    assert main(["obs", "validate", str(good)]) == 0
    assert "valid trace" in capsys.readouterr().out
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["obs", "validate", str(bad)]) == 1


def test_obs_config_validation():
    with pytest.raises(Exception):
        ObsConfig(sample_interval=-1)
    config = ObsConfig(events_path="x.json")
    assert config.events is True
    assert ObsConfig().sample_interval == DEFAULT_SAMPLE_INTERVAL
