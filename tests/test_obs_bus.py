"""Batch telemetry: the event bus, span traces, rollups, live view.

The load-bearing contracts:

* **off means off** — without a bus, runs emit zero events and produce
  bit-identical ``SystemStats`` to bus-on runs;
* the JSONL event log is schema-valid (``validate_events``) with the
  collector's ``seq`` as a strict total order;
* the batch Perfetto trace has one span track per worker and passes
  ``validate_trace`` (which now accepts instant and counter phases);
* the stores (`ResultCache`, `CheckpointStore`, `TraceStore`) count
  their traffic with or without a bus, and emit onto one when current.

The killed-worker / pool-rebuild durability tests live with the other
fault-injection tests in ``test_runner_faults.py``.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.cli import main
from repro.core.runner import BatchManifest, Job, ResultCache, Runner
from repro.core.sweeps import sweep_mem_field
from repro.obs import (
    EVENT_KINDS,
    BusEvent,
    EventBus,
    LiveView,
    build_batch_trace,
    prometheus_text,
    read_events,
    rollup_events,
    validate_events,
    validate_trace,
    write_batch_trace,
)
from repro.obs import bus as obs_bus
from repro.trace.store import TraceStore

CAP = 2_000_000


@pytest.fixture(autouse=True)
def _clean_current_handle():
    """Never leak a process-current bus handle between tests."""
    yield
    obs_bus.set_current(None)


class RecordingHandle:
    """In-process stand-in for a BusHandle (store-hook tests)."""

    def __init__(self):
        self.events = []
        self.parent_pid = os.getpid()

    def emit(self, kind, **fields):
        self.events.append((kind, fields))

    def kinds(self):
        return [kind for kind, _ in self.events]


def quick_job(arch: str = "shared-l1", workload: str = "fft") -> Job:
    return Job(
        arch=arch, workload=workload, scale="test", n_cpus=2,
        max_cycles=CAP,
    )


# ----------------------------------------------------------------------
# event schema


def test_bus_event_roundtrip():
    event = BusEvent(
        kind="job.start", ts=12.5, pid=42, seq=7,
        fields={"job": "fft/shared-l1/mipsy", "attempt": 2},
    )
    line = event.to_json_line()
    back = BusEvent.from_dict(json.loads(line))
    assert back.kind == "job.start"
    assert back.ts == 12.5
    assert back.pid == 42
    assert back.seq == 7
    assert back.fields == {"job": "fft/shared-l1/mipsy", "attempt": 2}


def test_validate_events_catches_schema_violations(tmp_path):
    log = tmp_path / "events.jsonl"
    lines = [
        json.dumps({"seq": 1, "ts": 1.0, "pid": 10, "kind": "batch.start"}),
        json.dumps({"seq": 2, "ts": 1.1, "pid": 10, "kind": "nonsense"}),
        json.dumps({"seq": 1, "ts": 1.2, "pid": 10, "kind": "batch.end"}),
        json.dumps({"seq": 4, "ts": 1.3, "pid": 10, "kind": "job.start"}),
        "{torn line",
    ]
    log.write_text("\n".join(lines) + "\n")
    errors = validate_events(log)
    assert any("unknown kind" in e for e in errors)
    assert any("seq ordering" in e for e in errors)
    assert any("missing its job" in e for e in errors)
    assert any("not valid JSON" in e for e in errors)


def test_validate_events_accepts_a_real_log(tmp_path):
    bus = EventBus(log_path=tmp_path / "events.jsonl").start()
    handle = bus.handle()
    handle.emit("batch.start", jobs=1)
    handle.emit("job.start", job="x/y/z", attempt=1)
    handle.emit("job.finish", job="x/y/z", attempt=1, wall_seconds=0.1)
    handle.emit("batch.end", jobs=1)
    bus.stop()
    assert validate_events(tmp_path / "events.jsonl") == []
    events = read_events(tmp_path / "events.jsonl")
    assert [e.kind for e in events] == [
        "batch.start", "job.start", "job.finish", "batch.end",
    ]
    assert [e.seq for e in events] == [1, 2, 3, 4]


def test_flush_is_a_collection_barrier():
    bus = EventBus().start()
    try:
        handle = bus.handle()
        for index in range(20):
            handle.emit("batch.start", jobs=index)
        assert bus.flush(timeout=10.0)
        assert len(bus.events) == 20
    finally:
        bus.stop()


def test_unknown_event_kinds_are_rejected_by_validator():
    # Every kind the runner and stores emit must be declared.
    for kind in (
        "job.start", "job.finish", "job.retry", "job.cached",
        "job.quarantined", "cache.hit", "cache.store", "ckpt.save",
        "trace.replay", "worker.spawn", "pool.rebuild",
    ):
        assert kind in EVENT_KINDS


# ----------------------------------------------------------------------
# runner integration (serial; parallel + faults in test_runner_faults)


def test_serial_batch_emits_lifecycle_and_cache_events(tmp_path):
    batch = [quick_job("shared-l1"), quick_job("shared-l2")]
    cache = ResultCache(tmp_path / "cache")
    bus = EventBus(log_path=tmp_path / "events.jsonl").start()
    report = Runner(jobs=1, cache=cache, bus=bus).run(batch)
    rollup = bus.stop()

    assert not report.failures
    assert rollup["by_kind"]["job.start"] == 2
    assert rollup["by_kind"]["job.finish"] == 2
    assert rollup["by_kind"]["cache.miss"] == 2
    assert rollup["by_kind"]["cache.store"] == 2
    assert rollup["by_kind"]["batch.start"] == 1
    assert rollup["by_kind"]["batch.end"] == 1
    assert validate_events(tmp_path / "events.jsonl") == []
    # the report carries both rollup flavors
    assert report.telemetry["events"] == rollup["events"]
    assert report.cache_stats["misses"] == 2
    assert report.cache_stats["stores"] == 2
    report_dict = report.to_dict()
    assert report_dict["result_cache"]["stores"] == 2
    assert report_dict["telemetry"]["by_kind"]["job.finish"] == 2
    # second run over the same cache: hits, no simulation
    bus2 = EventBus().start()
    second = Runner(
        jobs=1, cache=ResultCache(tmp_path / "cache"), bus=bus2
    ).run(batch)
    rollup2 = bus2.stop()
    assert rollup2["by_kind"]["cache.hit"] == 2
    assert rollup2["by_kind"]["job.cached"] == 2
    assert "job.start" not in rollup2["by_kind"]
    assert second.cache_hits == 2


def test_bus_off_emits_zero_events_and_identical_stats(tmp_path):
    job = quick_job()
    # No bus anywhere: the process-current handle stays None and the
    # only cost on every hook is that None check.
    assert obs_bus.current() is None
    plain = Runner(jobs=1).run([job]).outcomes[0].result

    bus = EventBus(log_path=tmp_path / "events.jsonl").start()
    observed = Runner(jobs=1, bus=bus).run([job]).outcomes[0].result
    bus.stop()
    assert obs_bus.current() is None  # restored after the batch

    assert plain.stats.to_dict() == observed.stats.to_dict()
    assert len(bus.events) > 0
    # and a bus-off run after a bus-on one emits nothing new
    before = len(bus.events)
    Runner(jobs=1).run([job])
    assert len(bus.events) == before


def test_sweep_carries_run_report_telemetry(tmp_path):
    result = sweep_mem_field(
        "fft", "l1d_size", [4096, 8192],
        archs=("shared-l1",), n_cpus=2, max_cycles=CAP,
        runner=Runner(jobs=1, cache=ResultCache(tmp_path / "cache")),
    )
    assert result.run_report is not None
    assert result.run_report["jobs"] == 2
    assert result.run_report["result_cache"]["misses"] == 2
    assert "per_job" not in result.run_report
    assert result.to_dict()["run_report"]["jobs"] == 2


def test_manifest_records_and_reloads_telemetry(tmp_path):
    path = tmp_path / "manifest.json"
    manifest = BatchManifest(path)
    Runner(jobs=1, manifest=manifest).run([quick_job()])
    manifest.record_telemetry({"events": 9, "workers": 2})
    reloaded = BatchManifest(path)
    assert reloaded.telemetry == {"events": 9, "workers": 2}
    assert len(reloaded) == 1


# ----------------------------------------------------------------------
# span model / batch trace


def _stream(*items):
    out = []
    for seq, (kind, ts, pid, fields) in enumerate(items, start=1):
        out.append(
            {"seq": seq, "ts": ts, "pid": pid, "kind": kind, **fields}
        )
    return out


def test_batch_trace_tracks_spans_retries_and_kills():
    events = _stream(
        ("batch.start", 0.0, 1, {"jobs": 3}),
        ("worker.spawn", 0.01, 10, {}),
        ("worker.spawn", 0.01, 11, {}),
        ("job.start", 0.02, 10, {"job": "a", "attempt": 1}),
        ("job.start", 0.02, 11, {"job": "b", "attempt": 1}),
        ("job.finish", 0.50, 10, {"job": "a", "attempt": 1,
                                  "wall_seconds": 0.48}),
        # worker 11 is SIGKILLed mid-job: no closer ever arrives
        ("job.retry", 0.60, 1, {"job": "b", "attempt": 1}),
        ("pool.rebuild", 0.61, 1, {"requeued": 1}),
        ("job.start", 0.70, 12, {"job": "b", "attempt": 2}),
        ("job.finish", 1.20, 12, {"job": "b", "attempt": 2,
                                  "wall_seconds": 0.5}),
        ("batch.end", 1.25, 1, {"jobs": 3}),
    )
    trace = build_batch_trace(events, label="faulty batch")
    assert validate_trace(trace) == []

    names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }
    assert names == {"runner", "worker 10", "worker 11", "worker 12"}

    spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    statuses = sorted(
        (s["name"], s["args"]["status"]) for s in spans
    )
    assert statuses == [("a", "ok"), ("b", "killed"), ("b", "ok")]
    # the killed attempt is drawn, closed at batch end, marked killed
    killed = next(s for s in spans if s["args"]["status"] == "killed")
    assert killed["args"]["killed"] is True
    # the successful retry is categorized as a retry span
    retry = [s for s in spans if s["cat"] == "retry"]
    assert len(retry) == 1 and retry[0]["args"]["attempt"] == 2
    # instants and counters made it through
    instants = {e["name"] for e in trace["traceEvents"]
                if e.get("ph") == "i"}
    assert {"job.retry", "pool.rebuild"} <= instants
    counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    assert counters and counters[-1]["args"]["done"] == 2


def test_validate_trace_accepts_instants_and_counters_strictly():
    def trace_with(extra):
        return {"traceEvents": [extra]}

    good_i = {"name": "x", "ph": "i", "s": "t", "pid": 1, "tid": 1,
              "ts": 5}
    good_c = {"name": "x", "ph": "C", "pid": 1, "tid": 1, "ts": 5,
              "args": {"v": 1}}
    assert validate_trace(trace_with(good_i)) == []
    assert validate_trace(trace_with(good_c)) == []
    bad_scope = dict(good_i, s="z")
    assert any("instant scope" in e
               for e in validate_trace(trace_with(bad_scope)))
    bad_counter = {k: v for k, v in good_c.items() if k != "args"}
    assert any("args" in e
               for e in validate_trace(trace_with(bad_counter)))
    unknown = dict(good_i, ph="b")
    assert any("unsupported phase" in e
               for e in validate_trace(trace_with(unknown)))


# ----------------------------------------------------------------------
# rollups + Prometheus exposition


def test_rollup_and_prometheus_text():
    events = _stream(
        ("batch.start", 0.0, 1, {"jobs": 2}),
        ("cache.miss", 0.01, 1, {}),
        ("cache.hit", 0.02, 1, {}),
        ("job.cached", 0.02, 1, {"job": "a"}),
        ("job.start", 0.03, 10, {"job": "b", "attempt": 1}),
        ("ckpt.save", 0.2, 10, {"digest": "d", "bytes": 10}),
        ("job.finish", 0.5, 10, {"job": "b", "attempt": 1,
                                 "wall_seconds": 0.47}),
        ("cache.store", 0.51, 1, {}),
        ("batch.end", 0.6, 1, {"jobs": 2}),
    )
    rollup = rollup_events(events)
    assert rollup["jobs"] == {"cached": 1, "ok": 1}
    assert rollup["cache_ops"] == {"hit": 1, "miss": 1, "store": 1}
    assert rollup["store_ops"] == {"ckpt.save": 1}
    assert rollup["workers"] == 1
    assert rollup["job_wall_seconds_count"] == 1
    assert rollup["batch_wall_seconds"] == pytest.approx(0.6)

    text = prometheus_text(rollup)
    assert 'repro_jobs_total{status="ok"} 1' in text
    assert 'repro_jobs_total{status="cached"} 1' in text
    assert 'repro_cache_ops_total{op="miss"} 1' in text
    assert 'repro_store_ops_total{op="save",store="ckpt"} 1' in text
    assert "# TYPE repro_jobs_total counter" in text
    assert "repro_job_wall_seconds_count 1" in text
    # custom prefix
    assert prometheus_text(rollup, prefix="isca").startswith(
        "# HELP isca_jobs_total"
    )


# ----------------------------------------------------------------------
# live view


def test_live_view_tracks_progress_and_eta():
    clock = iter(range(100))
    stream = io.StringIO()
    view = LiveView(
        total=4, stream=stream, interval=0.0,
        clock=lambda: float(next(clock)),
    )
    view.on_event(BusEvent("job.start", 1.0, 10,
                           fields={"job": "a/b/c"}))
    assert view.busy == {10: "a/b/c"}
    view.on_event(BusEvent("cache.miss", 1.0, 1))
    view.on_event(BusEvent("job.finish", 3.0, 10,
                           fields={"job": "a/b/c",
                                   "wall_seconds": 2.0}))
    view.on_event(BusEvent("cache.hit", 3.1, 1))
    view.on_event(BusEvent("job.cached", 3.1, 1,
                           fields={"job": "d/e/f"}))
    line = view.render()
    assert "2/4 done" in line
    assert "1 cached" in line
    assert "cache 50% hit" in line
    assert view.done == 2 and view.cached == 1 and view.failed == 0
    # ETA: 2 remaining x 2.0s mean / 1 lane... no lanes busy -> uses 1
    assert view.eta_seconds() == pytest.approx(4.0)
    view.finish()
    assert "2/4 done" in stream.getvalue()


def test_live_view_never_breaks_collection():
    class ExplodingStream(io.StringIO):
        def write(self, *_):
            raise OSError("tty gone")

    bus = EventBus(
        on_event=LiveView(
            total=1, stream=ExplodingStream(), interval=0.0
        ).on_event,
    ).start()
    try:
        bus.handle().emit("job.start", job="a")
        assert bus.flush()
        assert len(bus.events) == 1  # collection survived the OSError
    finally:
        bus.stop()


# ----------------------------------------------------------------------
# store instrumentation


def test_result_cache_counts_without_a_bus(tmp_path):
    cache = ResultCache(tmp_path)
    job = quick_job()
    assert cache.get(job) is None
    assert (cache.hits, cache.misses, cache.stores) == (0, 1, 0)
    result = job.run()
    cache.put(job, result)
    assert cache.stores == 1
    assert cache.get(job) is not None
    assert cache.hits == 1
    # corrupt entry: dropped, counted as an eviction + miss
    cache.path_for(job).write_text("{torn")
    assert cache.get(job) is None
    assert cache.evictions == 1
    assert cache.misses == 2
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["bytes_written"] > 0


def test_runner_summary_includes_cache_counters(tmp_path):
    cache = ResultCache(tmp_path)
    runner = Runner(jobs=1, cache=cache)
    assert runner.summary() == "no batch has run"
    runner.run([quick_job()])
    text = runner.summary()
    assert "1 miss(es)" in text
    assert "1 store(s)" in text
    runner.run([quick_job()])
    assert "1 hit(s)" in runner.summary()


def test_ckpt_store_metrics_and_events(tmp_path):
    from repro.ckpt import CheckpointStore

    handle = RecordingHandle()
    obs_bus.set_current(handle)
    store = CheckpointStore(tmp_path)
    digest = store.save({"meta": {"cycle": 5}, "x": 1}, key="k")
    store.save({"meta": {"cycle": 5}, "x": 1})  # identical: dedup
    store.load(digest)
    assert store.saves == 2
    assert store.loads == 1
    assert store.stats()["dedups"] == 1
    assert store.stats()["bytes_read"] > 0
    kinds = handle.kinds()
    assert kinds.count("ckpt.save") == 2
    assert kinds.count("ckpt.load") == 1
    saved = [f for k, f in handle.events if k == "ckpt.save"]
    assert saved[0]["deduped"] is False
    assert saved[1]["deduped"] is True


def test_trace_store_metrics_and_replay_event(tmp_path):
    handle = RecordingHandle()
    obs_bus.set_current(handle)
    store = TraceStore(tmp_path)
    first = store.get_or_record("fft", "test", 2)
    again = store.get_or_record("fft", "test", 2)
    assert first == again
    assert store.records == 1
    assert store.hits == 1
    assert store.stats()["misses"] == 1
    kinds = handle.kinds()
    assert kinds.count("trace.record") == 1
    assert kinds.count("trace.hit") == 1

    replayed = Job(
        arch="shared-l2", workload="fft", scale="test", n_cpus=2,
        max_cycles=CAP, replay=True, trace_dir=str(tmp_path),
    ).run()
    assert replayed.extras["backend"] == "replay"
    replay_events = [f for k, f in handle.events if k == "trace.replay"]
    assert len(replay_events) == 1
    assert replay_events[0]["engine"] == "kernel"


# ----------------------------------------------------------------------
# CLI


def run_small_batch(tmp_path):
    bus = EventBus(log_path=tmp_path / "events.jsonl").start()
    Runner(
        jobs=1, cache=ResultCache(tmp_path / "cache"), bus=bus
    ).run([quick_job()])
    bus.stop()
    write_batch_trace(bus.events, tmp_path / "batch_trace.json")
    return tmp_path / "events.jsonl", tmp_path / "batch_trace.json"


def test_cli_validate_sniffs_both_formats(tmp_path, capsys):
    log, trace = run_small_batch(tmp_path)
    assert main(["obs", "validate", str(log)]) == 0
    assert "valid event log" in capsys.readouterr().out
    assert main(["obs", "validate", str(trace)]) == 0
    assert "valid trace" in capsys.readouterr().out
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"seq": 1, "ts": 1.0, "pid": 3, "kind": "wat"}\n')
    assert main(["obs", "validate", str(bad)]) == 1


def test_cli_tail_prints_events(tmp_path, capsys):
    log, _ = run_small_batch(tmp_path)
    assert main(["obs", "tail", str(log)]) == 0
    out = capsys.readouterr().out
    assert "batch.start" in out
    assert "job.finish" in out
    assert "job=fft/shared-l1/mipsy" in out
    # --lines trims from the front
    assert main(["obs", "tail", str(log), "--lines", "1"]) == 0
    out = capsys.readouterr().out
    assert "batch.end" in out and "batch.start" not in out


def test_cli_export_prometheus_and_json(tmp_path, capsys):
    log, _ = run_small_batch(tmp_path)
    assert main(["obs", "export", str(log)]) == 0
    out = capsys.readouterr().out
    assert 'repro_jobs_total{status="ok"} 1' in out
    assert main([
        "obs", "export", str(log), "--format", "json",
    ]) == 0
    rollup = json.loads(capsys.readouterr().out)
    assert rollup["jobs"] == {"ok": 1}
    assert main([
        "obs", "export", str(log), "--prefix", "isca",
    ]) == 0
    assert "isca_jobs_total" in capsys.readouterr().out


def test_cli_batch_report(tmp_path, capsys):
    log, _ = run_small_batch(tmp_path)
    assert main(["obs", "report", "--batch", str(log)]) == 0
    out = capsys.readouterr().out
    assert "batch report" in out
    assert "1 ok" in out
    assert "result cache" in out


def test_cli_obs_report_still_requires_workload_without_batch(capsys):
    assert main(["obs", "report"]) == 2
    assert "--batch" in capsys.readouterr().err
