"""Tests for the paper-claims module (and the claims themselves, at
test scale where the harness expects them to hold)."""

import pytest

from repro.core.experiment import run_architecture_comparison
from repro.core.paper import (
    PAPER_EXPECTATIONS,
    check_figure,
    format_check_report,
)
from repro.errors import ReproError
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def results_cache():
    cache = {}

    def get(workload):
        if workload not in cache:
            cache[workload] = run_architecture_comparison(
                WORKLOADS[workload], cpu_model="mipsy", scale="test",
                max_cycles=3_000_000,
            )
        return cache[workload]

    return get


def test_every_figure_has_expectations():
    assert set(PAPER_EXPECTATIONS) == {
        "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"
    }
    for expectation in PAPER_EXPECTATIONS.values():
        assert expectation.checks
        assert expectation.workload in WORKLOADS


def test_unknown_figure_rejected(results_cache):
    with pytest.raises(ReproError):
        check_figure(results_cache("ear"), "fig99")


def test_check_report_format(results_cache):
    report = check_figure(results_cache("ear"), "fig8")
    text = format_check_report(report)
    assert "shared-l1" in text
    assert "[ OK]" in text or "[DEV]" in text


@pytest.mark.parametrize("figure", ["fig4", "fig8"])
def test_structural_claims_hold_at_test_scale(figure, results_cache):
    workload = PAPER_EXPECTATIONS[figure].workload
    report = check_figure(
        results_cache(workload), figure, structural_only=True
    )
    failures = [row for row in report if not row[1]]
    assert not failures, format_check_report(report)


def test_all_structural_claims_hold_at_test_scale(results_cache):
    """Structural claims (orderings, invariant shapes) are
    scale-independent and must hold everywhere; quantitative bounds
    are bench-scale claims checked by the benchmark harness."""
    for figure, expectation in PAPER_EXPECTATIONS.items():
        report = check_figure(
            results_cache(expectation.workload), figure,
            structural_only=True,
        )
        failures = [row for row in report if not row[1]]
        assert not failures, (figure, format_check_report(report))


def test_quantitative_flag_present_on_every_check():
    for expectation in PAPER_EXPECTATIONS.values():
        for check in expectation.checks:
            assert hasattr(check, "quantitative")
            assert hasattr(check, "label")
