"""Smoke tests for the full paper-scale configuration.

Paper-scale runs take minutes to hours; these tests verify that the
true-size configuration (16 KB L1s, 2 MB L2, 35,000 particles, ...)
*constructs correctly* everywhere and *executes* a bounded slice on
every architecture — so a user choosing `-s paper` hits no surprises,
without the test suite paying for complete runs.
"""

import pytest

from repro.core.configs import paper_config
from repro.core.system import System
from repro.mem.functional import FunctionalMemory
from repro.workloads import WORKLOADS

_SLICE_CYCLES = 30_000


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_paper_scale_constructs(name):
    workload = WORKLOADS[name](4, FunctionalMemory(), "paper")
    # Programs start producing instructions immediately.
    inst = next(workload.program(0))
    assert inst.pc > 0


@pytest.mark.parametrize("arch", ("shared-l1", "shared-l2", "shared-mem"))
def test_paper_scale_slice_runs(arch):
    functional = FunctionalMemory()
    workload = WORKLOADS["ocean"](4, functional, "paper")
    system = System(
        arch,
        workload,
        cpu_model="mipsy",
        mem_config=paper_config(),
        max_cycles=_SLICE_CYCLES,
    )
    stats = system.run()
    assert stats.instructions > 1000
    # The paper-size caches swallow the early working set.
    l1 = stats.aggregate_caches(".l1d")
    assert l1.accesses > 0


def test_paper_scale_mxs_slice_runs():
    functional = FunctionalMemory()
    workload = WORKLOADS["ear"](4, functional, "paper")
    system = System(
        "shared-l1",
        workload,
        cpu_model="mxs",
        mem_config=paper_config(),
        max_cycles=_SLICE_CYCLES,
    )
    stats = system.run()
    assert sum(m.graduated for m in stats.mxs) > 1000


def test_paper_scale_geometry_is_the_papers():
    config = paper_config()
    assert config.shared_l1_size == 64 * 1024
    assert config.l2_size == 2 * 1024 * 1024
    workload = WORKLOADS["mp3d"](4, FunctionalMemory(), "paper")
    assert workload.n_particles == 35000
    assert workload.steps == 20
    eqntott = WORKLOADS["eqntott"](4, FunctionalMemory(), "paper")
    assert eqntott.vec_words == 512
