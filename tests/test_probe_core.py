"""Probe-core contracts: LRU iteration order and write-buffer edges.

Direct coverage for contracts the packed-array probe core leans on
implicitly elsewhere:

* the documented iteration/flush ordering of :class:`CacheArray`
  (sets in index order, LRU within each set — the checkpoint walker
  round-trips exactly this order);
* write-buffer admission edge cases (the retire race at the exact
  completion cycle, same-line stores, drain at a barrier);
* :class:`InvalidationTracker` classification across evict/re-fill of
  the same tag.
"""

from repro.mem.cache import CacheArray, LineState
from repro.mem.writebuffer import WriteBuffer
from repro.sim.stats import MissKind


def make_cache(size=1024, assoc=2, line=32, name="c"):
    return CacheArray(name, size, assoc, line)


# ----------------------------------------------------------------------
# lines()/flush() ordering contract


def test_lines_order_is_sets_then_lru():
    cache = make_cache(size=256, assoc=2, line=32)  # 4 sets, 2 ways
    cache.insert(0x000)  # line 0 -> set 0
    cache.insert(0x080)  # line 4 -> set 0
    cache.insert(0x020)  # line 1 -> set 1
    # Touch line 0: line 4 becomes the set's LRU entry.
    cache.lookup(0x000)
    order = [line.line_addr for line in cache.lines()]
    assert order == [4, 0, 1]


def test_probe_refresh_reorders_lines():
    cache = make_cache(size=64, assoc=2, line=32)  # 1 set, 2 ways
    cache.insert(0x000)
    cache.insert(0x020)
    assert [line.line_addr for line in cache.lines()] == [0, 1]
    # A packed probe is an LRU touch: the probed line moves to MRU.
    assert cache.probe(0) >= 0
    assert [line.line_addr for line in cache.lines()] == [1, 0]
    # probe_modify refreshes recency too (and dirties the line).
    assert cache.probe_modify(1) >= 0
    assert [line.line_addr for line in cache.lines()] == [0, 1]
    assert cache.state_of(0x020) == LineState.MODIFIED


def test_flush_returns_dirty_lines_in_lines_order():
    cache = make_cache(size=256, assoc=2, line=32)  # 4 sets
    cache.insert(0x040, LineState.MODIFIED)  # line 2 -> set 2
    cache.insert(0x000, LineState.MODIFIED)  # line 0 -> set 0
    cache.insert(0x080, LineState.MODIFIED)  # line 4 -> set 0
    cache.insert(0x020)                      # line 1 -> set 1, clean
    cache.lookup(0x000)  # set 0 LRU order becomes [4, 0]
    expected = [
        line.line_addr for line in cache.lines() if line.dirty
    ]
    flushed = [line.line_addr for line in cache.flush()]
    assert flushed == expected == [4, 0, 2]
    assert cache.resident_count() == 0


def test_export_import_preserves_replacement_decisions():
    original = make_cache(size=64, assoc=2, line=32)  # 1 set, 2 ways
    original.insert(0x000)
    original.insert(0x020)
    original.lookup(0x000)  # line 1 is now the victim-to-be

    clone = make_cache(size=64, assoc=2, line=32)
    clone.import_sets(original.export_sets())

    victim_a = original.insert(0x040)
    victim_b = clone.insert(0x040)
    assert victim_a is not None and victim_b is not None
    assert victim_a.line_addr == victim_b.line_addr == 1


# ----------------------------------------------------------------------
# write-buffer admission edges


def test_admit_retire_race_at_exact_completion_cycle():
    # The oldest entry completes exactly at the admit cycle: the slot
    # is free at that cycle, so the store enters without a stall.
    buffer = WriteBuffer(depth=1)
    buffer.admit(0)
    buffer.push(5)
    start, stalled = buffer.admit(5)
    assert start == 5 and not stalled
    assert buffer.full_stalls == 0


def test_admit_one_cycle_before_completion_stalls():
    buffer = WriteBuffer(depth=1)
    buffer.admit(0)
    buffer.push(5)
    start, stalled = buffer.admit(4)
    assert stalled and start == 5
    assert buffer.full_stalls == 1


def test_same_line_stores_are_not_coalesced():
    # The model performs no write-merging: back-to-back stores to the
    # same line each take a slot and drain in order (the paper's
    # write-through port-contention accounting depends on every store
    # reaching the next level).
    buffer = WriteBuffer(depth=2)
    assert buffer.push(10) == 10
    assert buffer.push(12) == 12
    assert buffer.occupancy == 2
    assert buffer.stores == 2
    start, stalled = buffer.admit(0)  # full until the oldest drains
    assert stalled and start == 10


def test_drain_at_barrier_retires_everything():
    buffer = WriteBuffer(depth=4)
    buffer.push(30)
    buffer.push(90)
    barrier_at = buffer.drain_time(10)
    assert barrier_at == 90
    # After the drain point every slot is free again: a burst of
    # depth-many stores admits without a single stall.
    for offset in range(buffer.depth):
        start, stalled = buffer.admit(barrier_at + offset)
        assert not stalled
        buffer.push(barrier_at + offset + 50)
    assert buffer.occupancy == buffer.depth


# ----------------------------------------------------------------------
# invalidation classification across evict/re-fill


def test_refill_resets_invalidation_classification():
    cache = make_cache()
    cache.insert(0x100)
    cache.invalidate(0x100)  # coherence action
    assert cache.classify_miss(0x100) == MissKind.MISS_INVALIDATION
    # Refetch the line: the tracker forgets the old invalidation, so a
    # later non-coherence eviction classifies as replacement again.
    cache.insert(0x100)
    cache.invalidate(0x100, coherence=False)
    assert cache.classify_miss(0x100) == MissKind.MISS_REPLACEMENT


def test_second_invalidation_of_same_tag_counts_again():
    cache = make_cache()
    line_addr = 0x100 >> cache.line_shift
    for _ in range(2):
        cache.fill(line_addr, LineState.SHARED)
        assert cache.evict(line_addr, coherence=True) >= 0
        assert cache.classify_line(line_addr) == MissKind.MISS_INVALIDATION
        # fill() notes the refetch; the stale entry must not linger.
        cache.fill(line_addr, LineState.SHARED)
        assert line_addr not in cache.tracker
        assert cache.evict(line_addr, coherence=False) >= 0
        assert cache.classify_line(line_addr) == MissKind.MISS_REPLACEMENT


def test_capacity_eviction_of_previously_invalidated_line():
    # Line invalidated by coherence, refetched, then pushed out by
    # capacity pressure: the capacity eviction must classify as a
    # replacement miss even though the tag was once invalidated.
    cache = make_cache(size=64, assoc=2, line=32)  # 1 set, 2 ways
    cache.insert(0x000)
    cache.invalidate(0x000)
    cache.insert(0x000)
    cache.insert(0x020)
    cache.insert(0x040)  # evicts 0x000 (LRU) by capacity
    assert not cache.contains(0x000)
    assert cache.classify_miss(0x000) == MissKind.MISS_REPLACEMENT
