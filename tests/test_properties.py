"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.bank import Resource
from repro.mem.cache import CacheArray, LineState
from repro.mem.functional import FunctionalMemory
from repro.mem.mshr import MshrFile
from repro.mem.writebuffer import WriteBuffer
from repro.sim.engine import Engine

# ----------------------------------------------------------------------
# cache vs. a reference LRU model

_ops = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "invalidate"]),
        st.integers(min_value=0, max_value=63),  # line index
    ),
    max_size=200,
)


class _ReferenceLru:
    """Oracle: per-set ordered list, most recent last."""

    def __init__(self, n_sets, assoc):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [[] for _ in range(n_sets)]

    def _set(self, line):
        return self.sets[line % self.n_sets]

    def touch(self, line):
        bucket = self._set(line)
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)
            return True
        if len(bucket) >= self.assoc:
            bucket.pop(0)
        bucket.append(line)
        return False

    def invalidate(self, line):
        bucket = self._set(line)
        if line in bucket:
            bucket.remove(line)

    def contains(self, line):
        return line in self._set(line)


@given(_ops)
@settings(max_examples=200, deadline=None)
def test_cache_matches_reference_lru(operations):
    cache = CacheArray("p", size=512, assoc=2, line_size=32)  # 8 sets
    reference = _ReferenceLru(cache.n_sets, cache.assoc)
    for op, line in operations:
        addr = line * 32
        if op == "invalidate":
            cache.invalidate(addr)
            reference.invalidate(line)
        else:
            hit = cache.lookup(addr) is not None
            assert hit == reference.contains(line)
            if not hit:
                cache.insert(
                    addr,
                    LineState.MODIFIED if op == "store" else LineState.SHARED,
                )
                reference.touch(line)
            else:
                reference.touch(line)
    resident = {line.line_addr for line in cache.lines()}
    expected = {line for bucket in reference.sets for line in bucket}
    assert resident == expected


@given(_ops)
@settings(max_examples=100, deadline=None)
def test_cache_capacity_invariant(operations):
    cache = CacheArray("p", size=256, assoc=2, line_size=32)
    for op, line in operations:
        addr = line * 32
        if op == "invalidate":
            cache.invalidate(addr)
        elif cache.lookup(addr) is None:
            cache.insert(addr)
        for set_index in range(cache.n_sets):
            assert cache.set_occupancy(set_index) <= cache.assoc


# ----------------------------------------------------------------------
# functional memory

_writes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),     # addr index
        st.integers(min_value=0, max_value=100),   # visible_at
        st.integers(min_value=0, max_value=999),   # value
    ),
    max_size=60,
)


@given(_writes, st.integers(min_value=0, max_value=120))
@settings(max_examples=200, deadline=None)
def test_functional_read_returns_latest_visible(writes, when):
    memory = FunctionalMemory()
    addrs = [0x100, 0x200, 0x300, 0x400]
    log = []
    for index, visible_at, value in writes:
        memory.write(addrs[index], value, visible_at)
        log.append((addrs[index], visible_at, value))
    for addr in addrs:
        visible = [
            (t, i, v)
            for i, (a, t, v) in enumerate(log)
            if a == addr and t <= when
        ]
        expected = max(visible)[2] if visible else 0
        assert memory.read(addr, when) == expected


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=8))
@settings(max_examples=100, deadline=None)
def test_simultaneous_sc_single_winner(cpus):
    """However many CPUs race LL/SC at identical times, exactly one
    SC succeeds."""
    memory = FunctionalMemory()
    contenders = sorted(set(cpus))
    for cpu in contenders:
        assert memory.load_linked(cpu, 0x500, 10) == 0
    outcomes = [
        memory.store_conditional(cpu, 0x500, 1, 12) for cpu in contenders
    ]
    assert outcomes.count(True) == 1


# ----------------------------------------------------------------------
# resources / buffers / mshr

_acquires = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=10),
    ),
    min_size=1,
    max_size=100,
)


@given(_acquires)
@settings(max_examples=100, deadline=None)
def test_resource_service_never_overlaps(acquires):
    res = Resource("r")
    intervals = []
    for at, occ in sorted(acquires):
        start = res.acquire(at, occ)
        assert start >= at
        intervals.append((start, start + occ))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1  # FIFO, no overlap


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
@settings(max_examples=100, deadline=None)
def test_writebuffer_visibility_is_monotonic(dones):
    buffer = WriteBuffer(depth=4)
    last = 0
    for done in dones:
        visible = buffer.push(done)
        assert visible >= last
        assert visible >= done
        last = visible


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=1, max_value=200),
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_mshr_never_exceeds_capacity(allocs):
    mshrs = MshrFile(capacity=4)
    now = 0
    for line, done in allocs:
        now += 1
        mshrs.retire(now)
        mshrs.allocate(line, now + done)
        assert mshrs.outstanding <= 4


# ----------------------------------------------------------------------
# engine ordering under arbitrary schedules


@given(
    st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=40
    )
)
@settings(max_examples=100, deadline=None)
def test_engine_executes_in_nondecreasing_time(times):
    engine = Engine()
    seen = []
    for t in times:
        engine.schedule(t, lambda t=t: seen.append(t))
    engine.drain()
    assert seen == sorted(seen)
    assert len(seen) == len(times)
