"""Differential contract of the batch replay kernel.

The kernel (``repro.trace.kernel``) claims *bit-identical*
``SystemStats`` with interpreter-mode replay of the same trace — that
contract is what makes it safe to route sweeps through the fast path
silently. This suite pins it on every preset topology for both traced
workloads, plus the surrounding plumbing: the content-addressed
:class:`TraceStore`, the ``Job(replay=True)`` lane and its cache-key
separation, and record -> replay -> record determinism.
"""

from __future__ import annotations

import pytest

from conftest import LoopWorkload

from repro.core.configs import config_for_scale
from repro.core.runner import Job
from repro.core.system import System
from repro.errors import ConfigError
from repro.mem.functional import FunctionalMemory
from repro.mem.topology import topology_names
from repro.trace.format import canonical_order, read_trace, write_trace
from repro.trace.kernel import PackedTrace, load_packed, replay_kernel
from repro.trace.recorder import record_run
from repro.trace.replay import TraceWorkload
from repro.trace.store import TraceStore

PRESETS = topology_names()
WORKLOADS = ("eqntott", "fft")
N_CPUS = 4


@pytest.fixture(scope="session")
def trace_store(tmp_path_factory):
    """One store for the whole session: recording is the slow part."""
    return TraceStore(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="session")
def traces(trace_store):
    """Recorded test-scale traces, one per workload."""
    return {
        name: trace_store.get_or_record(name, "test", N_CPUS)
        for name in WORKLOADS
    }


def interpreter_replay_stats(arch, trace_path, cpu_model="mipsy"):
    """Replay through the ordinary System, as run_replay's slow path does."""
    functional = FunctionalMemory()
    workload = TraceWorkload.from_file(N_CPUS, functional, trace_path)
    system = System(
        arch,
        workload,
        cpu_model=cpu_model,
        mem_config=config_for_scale("test", N_CPUS),
        max_cycles=50_000_000,
    )
    system.run()
    assert not system.truncated
    return system.stats


# ----------------------------------------------------------------------
# the differential contract


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("arch", PRESETS)
def test_kernel_bit_identical_to_interpreter(arch, workload, traces):
    """The load-bearing invariant: same trace, same config -> the
    kernel's stats equal the interpreter's, field for field."""
    path = traces[workload]
    packed = PackedTrace.from_file(N_CPUS, path)
    outcome = replay_kernel(
        packed, arch, mem_config=config_for_scale("test", N_CPUS)
    )
    assert not outcome.truncated
    expected = interpreter_replay_stats(arch, path)
    assert outcome.stats.to_dict() == expected.to_dict()


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("arch", PRESETS)
def test_mxs_replay_lane_matches_direct_interpreter(
    arch, workload, traces, trace_store
):
    """MXS has no kernel: the lane must fall back to the interpreter
    and produce exactly what a hand-built replay run produces."""
    job = Job(
        arch=arch,
        workload=workload,
        cpu_model="mxs",
        scale="test",
        n_cpus=N_CPUS,
        replay=True,
        trace_dir=str(trace_store.root),
    )
    result = job.run()
    expected = interpreter_replay_stats(
        arch, traces[workload], cpu_model="mxs"
    )
    assert result.stats.to_dict() == expected.to_dict()
    assert result.extras["backend"] == "replay"
    assert result.extras["replay"]["engine"] == "interpreter"


def test_mipsy_replay_lane_uses_the_kernel(traces, trace_store):
    job = Job(
        arch="shared-l2",
        workload="eqntott",
        scale="test",
        n_cpus=N_CPUS,
        replay=True,
        trace_dir=str(trace_store.root),
    )
    result = job.run()
    assert result.extras["backend"] == "replay"
    assert result.extras["replay"]["engine"] == "kernel"
    assert result.workload == "eqntott"
    expected = interpreter_replay_stats("shared-l2", traces["eqntott"])
    assert result.stats.to_dict() == expected.to_dict()


def test_kernel_identical_with_fast_lane_off(traces):
    """The fast lane is a pure host optimization in the kernel too."""
    path = traces["eqntott"]
    packed = PackedTrace.from_file(N_CPUS, path)
    with_lane = replay_kernel(
        packed, "shared-l2", mem_config=config_for_scale("test", N_CPUS)
    )
    config = config_for_scale("test", N_CPUS).with_overrides(
        l1_fast_path=False
    )
    without_lane = replay_kernel(packed, "shared-l2", mem_config=config)
    assert with_lane.stats.to_dict() == without_lane.stats.to_dict()


def test_kernel_rejects_cpu_count_mismatch(traces):
    packed = PackedTrace.from_file(N_CPUS, traces["eqntott"])
    with pytest.raises(ConfigError):
        replay_kernel(
            packed, "shared-l2", mem_config=config_for_scale("test", 8)
        )


def test_kernel_truncation(traces):
    packed = PackedTrace.from_file(N_CPUS, traces["eqntott"])
    outcome = replay_kernel(
        packed,
        "shared-l2",
        mem_config=config_for_scale("test", N_CPUS),
        max_cycles=100,
    )
    assert outcome.truncated


# ----------------------------------------------------------------------
# determinism: record -> replay -> record is a fixed point


@pytest.mark.parametrize("arch", PRESETS)
def test_record_replay_record_byte_identical(arch, tmp_path):
    """Replaying a canonical trace and re-recording it reproduces the
    file byte for byte, on every preset (cluster-l1 at its full 16
    CPUs). Constant-pc replay plus canonical per-CPU ordering make the
    trace a fixed point of the record cycle."""
    n_cpus = 16 if arch == "cluster-l1" else 4
    config = config_for_scale("test", n_cpus)
    functional = FunctionalMemory()
    workload = LoopWorkload(n_cpus, functional, iterations=3)
    source = System(
        arch, workload, mem_config=config, max_cycles=2_000_000
    )
    recorder = record_run(source)
    assert not source.truncated
    first = tmp_path / "first.trace"
    write_trace(first, canonical_order(recorder.records))

    replay_config = config_for_scale("test", n_cpus)
    replay = System(
        arch,
        TraceWorkload.from_file(n_cpus, FunctionalMemory(), first),
        mem_config=replay_config,
        max_cycles=2_000_000,
    )
    re_recorder = record_run(replay)
    assert not replay.truncated
    second = tmp_path / "second.trace"
    write_trace(second, canonical_order(re_recorder.records))

    assert first.read_bytes() == second.read_bytes()


# ----------------------------------------------------------------------
# packed decode


def test_bulk_parser_matches_record_constructor(traces):
    path = traces["eqntott"]
    fast = PackedTrace.from_file(N_CPUS, path)
    slow = PackedTrace(N_CPUS, read_trace(path))
    assert fast.n_records == slow.n_records
    assert fast.kinds == slow.kinds
    assert fast.addrs == slow.addrs
    assert fast.pcs == slow.pcs


def test_load_packed_memoizes(traces):
    path = traces["fft"]
    first = load_packed(N_CPUS, path)
    again = load_packed(N_CPUS, path)
    assert again is first


def test_binary_sidecar_round_trips(tmp_path, traces):
    """A cold process loads the cached binary decode instead of
    re-parsing the text — and gets identical columns."""
    import shutil

    from repro.trace.kernel import (
        _DECODE_CACHE,
        _read_sidecar,
        _sidecar_path,
    )

    path = tmp_path / "t.trace"
    shutil.copy(traces["eqntott"], path)
    direct = PackedTrace.from_file(N_CPUS, path)
    loaded = load_packed(N_CPUS, path)  # decodes + writes the sidecar
    sidecar = _sidecar_path(path, N_CPUS)
    assert sidecar.is_file()

    _DECODE_CACHE.clear()  # simulate a fresh process
    import os

    from_sidecar = _read_sidecar(path, N_CPUS, os.stat(path))
    assert from_sidecar is not None
    assert from_sidecar.n_records == direct.n_records
    assert from_sidecar.kinds == direct.kinds
    assert from_sidecar.addrs == direct.addrs
    assert from_sidecar.pcs == direct.pcs

    # A re-recorded (touched) trace must not be served the stale decode.
    path.write_text(path.read_text() + "0 L 10 0\n")
    os.utime(path, ns=(1, 1))
    assert _read_sidecar(path, N_CPUS, os.stat(path)) is None
    fresh = load_packed(N_CPUS, path)
    assert fresh.n_records == loaded.n_records + 1


# ----------------------------------------------------------------------
# the trace store


def test_store_records_once(trace_store):
    first = trace_store.get_or_record("eqntott", "test", N_CPUS)
    mtime = first.stat().st_mtime_ns
    second = trace_store.get_or_record("eqntott", "test", N_CPUS)
    assert second == first
    assert second.stat().st_mtime_ns == mtime  # no re-record


def test_store_key_separates_specs(trace_store):
    base = trace_store.key("eqntott", "test", 4)
    assert trace_store.key("fft", "test", 4) != base
    assert trace_store.key("eqntott", "test", 8) != base
    assert trace_store.key("eqntott", "small", 4) != base


def test_store_rejects_factory_workloads(trace_store):
    with pytest.raises(ConfigError):
        trace_store.spec(LoopWorkload, "test", 4)


def test_replay_job_rejects_factory_workloads(tmp_path):
    job = Job(
        arch="shared-l2",
        workload=lambda n, f, s: LoopWorkload(n, f),
        replay=True,
        trace_dir=str(tmp_path),
    )
    with pytest.raises(ConfigError):
        job.run()


# ----------------------------------------------------------------------
# cache-key separation of the replay lane


def test_replay_jobs_key_apart_from_generated_jobs():
    generated = Job(arch="shared-l2", workload="eqntott", scale="test")
    replayed = Job(
        arch="shared-l2", workload="eqntott", scale="test", replay=True
    )
    assert replayed.key() != generated.key()
    assert generated.spec()["backend"] == "interpreter"
    assert replayed.spec()["backend"] == "replay"
    assert replayed.label().endswith("(replay)")


def test_trace_dir_is_policy_not_identity():
    plain = Job(
        arch="shared-l2", workload="eqntott", scale="test", replay=True
    )
    pointed = Job(
        arch="shared-l2",
        workload="eqntott",
        scale="test",
        replay=True,
        trace_dir="/tmp/elsewhere",
    )
    assert pointed.key() == plain.key()
