"""Tests for the report formatters and resource accounting."""

import pytest

from conftest import LoopWorkload, build_system

from repro.core.experiment import ExperimentResult, run_architecture_comparison
from repro.core.report import (
    format_bar_chart,
    format_resource_table,
)
from repro.errors import ReproError
from repro.sim.stats import SystemStats


def _loop_factory(n_cpus, functional, scale):
    return LoopWorkload(n_cpus, functional, iterations=4)


def _fake_result(arch, cycles, resources=None):
    stats = SystemStats.for_cpus(4)
    stats.cycles = cycles
    return ExperimentResult(
        arch=arch, workload="w", cpu_model="mipsy", scale="test",
        stats=stats, extras={"resources": resources or {}},
    )


# ----------------------------------------------------------------------
# bar chart


def test_bar_chart_scales_to_peak():
    chart = format_bar_chart({"a": 1.0, "b": 0.5}, width=40)
    lines = chart.splitlines()
    assert lines[0].count("#") == 40
    assert lines[1].count("#") == 20


def test_bar_chart_minimum_one_char():
    chart = format_bar_chart({"a": 1.0, "tiny": 0.001})
    assert "tiny" in chart
    for line in chart.splitlines():
        assert "#" in line


def test_bar_chart_title():
    chart = format_bar_chart({"a": 1.0}, title="hello")
    assert chart.splitlines()[0] == "hello"


def test_bar_chart_rejects_empty_and_nonpositive():
    with pytest.raises(ReproError):
        format_bar_chart({})
    with pytest.raises(ReproError):
        format_bar_chart({"a": 0.0})


# ----------------------------------------------------------------------
# resource table


def test_resource_table_shows_busy_resources():
    results = {
        "shared-mem": _fake_result("shared-mem", 100, {"bus": 0.42}),
    }
    table = format_resource_table(results)
    assert "bus=42%" in table


def test_resource_table_elides_idle_resources():
    results = {
        "shared-l1": _fake_result(
            "shared-l1", 100, {"l2.port": 0.001, "memory": 0.5}
        ),
    }
    table = format_resource_table(results, threshold=0.05)
    assert "l2.port" not in table
    assert "memory=50%" in table


def test_resource_table_handles_missing_data():
    results = {"shared-l1": _fake_result("shared-l1", 100, {})}
    table = format_resource_table(results)
    assert "shared-l1" in table


# ----------------------------------------------------------------------
# resource_report plumbing end-to-end


def test_experiment_results_carry_resource_reports():
    results = run_architecture_comparison(_loop_factory, scale="test")
    for arch, result in results.items():
        report = result.extras["resources"]
        assert isinstance(report, dict)
        assert report, arch
        for name, value in report.items():
            assert 0.0 <= value <= 1.5, (arch, name, value)
        assert result.extras["truncated"] is False


def test_shared_mem_reports_bus_utilization():
    system = build_system("shared-mem", LoopWorkload, iterations=5)
    stats = system.run()
    report = system.memory.resource_report(stats.cycles)
    assert "bus" in report
    assert report["bus"] > 0


def test_shared_l2_reports_ports_and_banks():
    system = build_system("shared-l2", LoopWorkload, iterations=5)
    stats = system.run()
    report = system.memory.resource_report(stats.cycles)
    assert any(name.startswith("l2.port") for name in report)
    assert any(name.startswith("l2.bank") for name in report)


def test_shared_l1_reports_banks_and_l2_port():
    system = build_system("shared-l1", LoopWorkload, iterations=5)
    stats = system.run()
    report = system.memory.resource_report(stats.cycles)
    assert "l2.port" in report
    assert any(name.startswith("l1.bank") for name in report)
