"""Tests for the process-parallel, cache-aware experiment runner."""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import (
    ExperimentResult,
    run_architecture_comparison,
    run_one,
)
from repro.core.runner import (
    Job,
    ResultCache,
    Runner,
    register_workload,
    run_jobs,
)
from repro.core.sweeps import sweep_mem_field
from repro.errors import ConfigError
from repro.mem.hierarchy import MemConfig
from repro.sim.stats import SystemStats
from repro.workloads import WORKLOADS

MATRIX = ("shared-l1", "shared-l2", "shared-mem")
CAP = 2_000_000


def _batch(workload: str = "eqntott", **kw) -> list[Job]:
    return [
        Job(arch=arch, workload=workload, scale="test", max_cycles=CAP, **kw)
        for arch in MATRIX
    ]


def _payloads(report) -> list[dict]:
    """to_dict payloads with the wall-clock (the only nondeterministic
    field) removed."""
    payloads = []
    for outcome in report.outcomes:
        data = outcome.result.to_dict()
        data.pop("wall_seconds")
        payloads.append(data)
    return payloads


# ----------------------------------------------------------------------
# Determinism: parallel == serial


def test_parallel_matches_serial_exactly():
    batch = _batch()
    serial = Runner(jobs=1).run(batch)
    parallel = Runner(jobs=4).run(batch)
    assert parallel.workers > 1, "parallel run must actually fan out"
    assert _payloads(serial) == _payloads(parallel)


def test_serial_runner_matches_run_one():
    report = Runner(jobs=1).run(_batch())
    for outcome in report.outcomes:
        direct = run_one(
            outcome.job.arch,
            WORKLOADS["eqntott"],
            scale="test",
            max_cycles=CAP,
        )
        assert outcome.result.cycles == direct.cycles
        assert outcome.result.instructions == direct.instructions


def test_outcomes_preserve_submission_order():
    batch = _batch()
    report = Runner(jobs=4).run(batch)
    assert [o.job.arch for o in report.outcomes] == list(MATRIX)


# ----------------------------------------------------------------------
# Result cache


def test_cache_hit_on_identical_job(tmp_path):
    cache = ResultCache(tmp_path)
    first = Runner(jobs=1, cache=cache).run(_batch())
    second = Runner(jobs=1, cache=cache).run(_batch())
    assert first.cache_hits == 0 and first.cache_misses == len(MATRIX)
    assert second.cache_hits == len(MATRIX) and second.cache_misses == 0
    # The cached results report byte-identical statistics (including
    # the original run's wall clock).
    firsts = [o.result.to_dict() for o in first.outcomes]
    seconds = [o.result.to_dict() for o in second.outcomes]
    assert firsts == seconds
    assert all(o.cached for o in second.outcomes)


def test_cache_miss_on_changed_override(tmp_path):
    cache = ResultCache(tmp_path)
    runner = Runner(jobs=1, cache=cache)
    runner.run(_batch(overrides={"l2_assoc": 1}))
    report = runner.run(_batch(overrides={"l2_assoc": 4}))
    assert report.cache_hits == 0
    assert report.cache_misses == len(MATRIX)


def test_no_cache_bypasses_disk(tmp_path):
    cache = ResultCache(tmp_path)
    Runner(jobs=1, cache=cache).run(_batch())
    report = Runner(jobs=1, cache=None).run(_batch())
    assert report.cache_hits == 0 and report.cache_misses == 0
    assert not any(outcome.cached for outcome in report.outcomes)


def test_cache_survives_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path)
    job = _batch()[0]
    Runner(jobs=1, cache=cache).run([job])
    path = cache.path_for(job)
    path.write_text("{not json")
    report = Runner(jobs=1, cache=cache).run([job])
    assert report.cache_hits == 0, "corrupt entry must read as a miss"
    assert report.outcomes[0].result.cycles > 0


def test_cache_entry_is_valid_json_with_spec(tmp_path):
    cache = ResultCache(tmp_path)
    job = _batch()[0]
    Runner(jobs=1, cache=cache).run([job])
    payload = json.loads(cache.path_for(job).read_text())
    assert payload["spec"]["arch"] == job.arch
    assert payload["spec"]["workload"] == "eqntott"
    assert payload["result"]["stats"]["cycles"] > 0


# ----------------------------------------------------------------------
# Job spec


def test_job_key_is_stable_and_spec_sensitive():
    job = Job(arch="shared-l1", workload="ear", scale="test")
    same = Job(arch="shared-l1", workload="ear", scale="test")
    other = Job(arch="shared-l1", workload="ear", scale="bench")
    assert job.key() == same.key()
    assert job.key() != other.key()
    assert job.key() != Job(
        arch="shared-l1", workload="ear", scale="test",
        overrides={"l2_assoc": 4},
    ).key()


def test_job_unknown_workload_raises():
    with pytest.raises(ConfigError, match="unknown workload"):
        Job(arch="shared-l1", workload="nonesuch").run()


def test_job_unknown_override_raises():
    job = Job(
        arch="shared-l1", workload="ear", scale="test",
        overrides={"warp_drive": 9},
    )
    with pytest.raises(ConfigError, match="unknown MemConfig field"):
        job.run()


def test_registered_workload_resolves_by_name():
    register_workload("runner-test-loop", WORKLOADS["ear"])
    job = Job(
        arch="shared-l2", workload="runner-test-loop", scale="test",
        max_cycles=CAP,
    )
    assert job.run().cycles > 0


def test_register_workload_rejects_bad_name():
    with pytest.raises(ConfigError):
        register_workload("", WORKLOADS["ear"])


# ----------------------------------------------------------------------
# Telemetry


def test_report_telemetry_accounts_for_every_job(tmp_path):
    report = run_jobs(_batch(), jobs=1, cache=ResultCache(tmp_path))
    data = report.to_dict()
    assert data["jobs"] == len(MATRIX)
    assert len(data["per_job"]) == len(MATRIX)
    assert data["busy_seconds"] > 0
    assert 0.0 <= data["utilization"] <= 1.0
    assert report.summary()


def test_progress_hook_fires_per_job(tmp_path):
    lines: list[str] = []
    cache = ResultCache(tmp_path)
    Runner(jobs=1, cache=cache, progress=lines.append).run(_batch())
    assert len(lines) == len(MATRIX)
    Runner(jobs=1, cache=cache, progress=lines.append).run(_batch())
    assert len(lines) == 2 * len(MATRIX)
    assert any("[cache]" in line for line in lines)


def test_runner_rejects_zero_workers():
    with pytest.raises(ConfigError):
        Runner(jobs=0)


# ----------------------------------------------------------------------
# Serialization round-trips


def test_experiment_result_round_trips_through_dict():
    result = run_one("shared-l2", WORKLOADS["ear"], scale="test",
                     max_cycles=CAP)
    clone = ExperimentResult.from_dict(result.to_dict())
    assert clone.to_dict() == result.to_dict()
    assert clone.stats.aggregate_breakdown().as_dict() == \
        result.stats.aggregate_breakdown().as_dict()


def test_experiment_result_round_trips_through_json():
    result = run_one("shared-l1", WORKLOADS["ear"], cpu_model="mxs",
                     scale="test", max_cycles=CAP)
    clone = ExperimentResult.from_dict(json.loads(result.to_json()))
    assert clone.cycles == result.cycles
    assert clone.per_cpu_ipc == result.per_cpu_ipc
    assert [m.to_dict() for m in clone.stats.mxs] == \
        [m.to_dict() for m in result.stats.mxs]


def test_system_stats_round_trip_preserves_caches():
    result = run_one("shared-mem", WORKLOADS["ear"], scale="test",
                     max_cycles=CAP)
    stats = SystemStats.from_dict(result.stats.to_dict())
    assert set(stats.caches) == set(result.stats.caches)
    l1 = stats.aggregate_caches(".l1d")
    assert l1.miss_rate == result.stats.aggregate_caches(".l1d").miss_rate


# ----------------------------------------------------------------------
# with_overrides


def test_with_overrides_revalidates():
    config = MemConfig()
    assert config.with_overrides(l2_assoc=4).l2_assoc == 4
    with pytest.raises(ConfigError, match="unknown MemConfig field"):
        config.with_overrides(bogus=1)
    with pytest.raises(ConfigError):
        config.with_overrides(l1d_size=-1)
    with pytest.raises(ConfigError):
        config.with_overrides(l1_coherence="telepathy")


def test_with_overrides_leaves_original_untouched():
    config = MemConfig()
    config.with_overrides(l2_assoc=8)
    assert config.l2_assoc == 1


# ----------------------------------------------------------------------
# Rebased consumers


def test_comparison_parallel_matches_serial():
    serial = run_architecture_comparison(
        "ear", scale="test", max_cycles=CAP, jobs=1,
    )
    parallel = run_architecture_comparison(
        "ear", scale="test", max_cycles=CAP, jobs=4,
    )
    for arch in MATRIX:
        a, b = serial[arch].to_dict(), parallel[arch].to_dict()
        a.pop("wall_seconds")
        b.pop("wall_seconds")
        assert a == b, arch


def test_comparison_shares_runner_cache(tmp_path):
    runner = Runner(jobs=1, cache=ResultCache(tmp_path))
    run_architecture_comparison(
        "ear", scale="test", max_cycles=CAP, runner=runner,
    )
    run_architecture_comparison(
        "ear", scale="test", max_cycles=CAP, runner=runner,
    )
    assert runner.last_report is not None
    assert runner.last_report.cache_hits == len(MATRIX)


def test_sweep_by_name_parallel_matches_serial():
    serial = sweep_mem_field(
        "ear", "l2_assoc", (1, 4), scale="test", max_cycles=CAP, jobs=1,
    )
    parallel = sweep_mem_field(
        "ear", "l2_assoc", (1, 4), scale="test", max_cycles=CAP, jobs=4,
    )
    for value in (1, 4):
        for arch in MATRIX:
            assert serial.cycles(value, arch) == parallel.cycles(value, arch)
