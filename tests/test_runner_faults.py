"""Runner fault tolerance: crashes, timeouts, manifests, torn caches.

The killing workload factories live in :mod:`tests.ckpt_helpers` (they
must be module-level to pickle into pool workers) and must only run
with ``jobs >= 2`` — under ``jobs=1`` they would SIGKILL the test
process itself.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

import ckpt_helpers
from repro.ckpt import CheckpointStore, snapshot_system
from repro.core.configs import config_for_scale
from repro.core.runner import BatchManifest, Job, ResultCache, Runner
from repro.core.system import System
from repro.errors import ConfigError
from repro.mem.functional import FunctionalMemory
from repro.workloads import WORKLOADS

CAP = 2_000_000


def normal_job(arch: str = "shared-l1") -> Job:
    return Job(arch=arch, workload="fft", scale="test", max_cycles=CAP)


# ----------------------------------------------------------------------
# Worker crashes


def test_worker_kill_is_retried_and_batch_completes(tmp_path, monkeypatch):
    """A SIGKILLed worker must not abort the batch (the old behaviour
    was an uncaught BrokenProcessPoolError killing Runner.run)."""
    monkeypatch.setenv("REPRO_TEST_KILL_DIR", str(tmp_path))
    batch = [
        Job(
            arch="shared-l1",
            workload=ckpt_helpers.kill_once_workload,
            scale="test",
            max_cycles=CAP,
        ),
        normal_job("shared-l2"),
        normal_job("shared-mem"),
    ]
    report = Runner(jobs=2).run(batch)
    assert len(report.outcomes) == 3
    assert not report.failures
    assert report.worker_crashes >= 1
    killer = report.outcomes[0]
    assert killer.result is not None
    assert killer.attempts >= 2
    assert (tmp_path / "killed-once").exists()


def test_poison_job_is_quarantined(tmp_path, monkeypatch):
    """A job that crashes its worker on every attempt exhausts its
    retry budget and is recorded as a failure, not retried forever."""
    monkeypatch.setenv("REPRO_TEST_KILL_DIR", str(tmp_path))
    batch = [
        Job(
            arch=arch,
            workload=ckpt_helpers.kill_always_workload,
            scale="test",
            max_cycles=CAP,
        )
        for arch in ("shared-l1", "shared-l2")
    ]
    report = Runner(jobs=2, max_retries=1).run(batch)
    assert len(report.failures) == 2
    for outcome in report.outcomes:
        assert outcome.result is None
        assert not outcome.timed_out
        assert "quarantined" in outcome.error
        assert outcome.attempts == 2  # max_retries + 1
    assert report.worker_crashes >= 2
    assert "2 failed" in report.summary()
    assert "worker crash" in report.summary()


# ----------------------------------------------------------------------
# Worker crashes with batch telemetry attached


def test_events_survive_a_sigkilled_worker(tmp_path, monkeypatch):
    """Everything a worker emitted before its SIGKILL must be in the
    log: emission is a synchronous RPC into the manager process, so the
    dead worker's ``job.start`` survives even though no terminator ever
    arrives, and the batch trace closes its span as ``killed``."""
    from repro.obs import (
        EventBus, build_batch_trace, validate_events, validate_trace,
    )

    monkeypatch.setenv("REPRO_TEST_KILL_DIR", str(tmp_path))
    killer_job = Job(
        arch="shared-l1",
        workload=ckpt_helpers.kill_once_workload,
        scale="test",
        max_cycles=CAP,
    )
    batch = [killer_job, normal_job("shared-l2"), normal_job("shared-mem")]
    log = tmp_path / "events.jsonl"
    bus = EventBus(log_path=log).start()
    report = Runner(jobs=2, bus=bus).run(batch)
    bus.stop()

    assert not report.failures
    assert report.worker_crashes >= 1
    assert validate_events(log) == []
    kinds = [event.kind for event in bus.events]
    # the first (killed) attempt's start is in the stream...
    killer_starts = [
        event for event in bus.events
        if event.kind == "job.start"
        and event.fields["job"].startswith("ckpt_helpers.")
    ]
    assert len(killer_starts) >= 2  # killed attempt + successful retry
    assert killer_starts[0].fields["attempt"] == 1
    assert max(s.fields["attempt"] for s in killer_starts) >= 2
    # ...alongside the parent's crash bookkeeping
    assert kinds.count("job.retry") >= 1
    assert kinds.count("worker.death") >= 1
    assert kinds.count("pool.rebuild") >= 1
    assert kinds.count("worker.spawn") >= 2  # both pools announced
    # every job that finished carries a finish event
    assert kinds.count("job.finish") == 3

    trace = build_batch_trace(bus.events, label="fault smoke")
    assert validate_trace(trace) == []
    spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    # the murdered attempt is visible, and the retry span is marked
    assert any(
        s["args"]["status"] in ("killed", "lost") for s in spans
    )
    assert any(s["cat"] == "retry" for s in spans)
    assert report.telemetry["by_kind"]["pool.rebuild"] >= 1


def test_collector_drains_before_pool_rebuild_is_recorded(
    tmp_path, monkeypatch
):
    """The ``pool.rebuild`` marker must land *after* everything the
    dead pool's workers emitted — the runner flushes the queue before
    recording the rebuild, so seq order proves the drain happened."""
    from repro.obs import EventBus

    monkeypatch.setenv("REPRO_TEST_KILL_DIR", str(tmp_path))
    batch = [
        Job(
            arch="shared-l1",
            workload=ckpt_helpers.kill_once_workload,
            scale="test",
            max_cycles=CAP,
        ),
        normal_job("shared-l2"),
    ]
    bus = EventBus().start()
    report = Runner(jobs=2, bus=bus).run(batch)
    bus.stop()
    assert not report.failures

    rebuilds = [e for e in bus.events if e.kind == "pool.rebuild"]
    assert rebuilds
    first_rebuild = rebuilds[0].seq
    # the killed attempt's start was emitted from the dead pool, yet
    # its seq precedes the rebuild marker
    killed_start = next(
        e for e in bus.events
        if e.kind == "job.start" and e.fields["attempt"] == 1
        and e.fields["job"].startswith("ckpt_helpers.")
    )
    assert killed_start.seq < first_rebuild
    # and the worker.death marker immediately precedes the rebuild
    deaths = [e.seq for e in bus.events if e.kind == "worker.death"]
    assert any(seq < first_rebuild for seq in deaths)


def test_quarantine_lands_on_the_bus(tmp_path, monkeypatch):
    """A poison job's terminal quarantine decision is an event (with
    its attempt count), so fleet dashboards can see it without parsing
    the run report."""
    from repro.obs import EventBus, rollup_events

    monkeypatch.setenv("REPRO_TEST_KILL_DIR", str(tmp_path))
    batch = [
        Job(
            arch=arch,
            workload=ckpt_helpers.kill_always_workload,
            scale="test",
            max_cycles=CAP,
        )
        for arch in ("shared-l1", "shared-l2")
    ]
    bus = EventBus().start()
    report = Runner(jobs=2, max_retries=1, bus=bus).run(batch)
    bus.stop()

    assert len(report.failures) == 2
    quarantined = [
        e for e in bus.events if e.kind == "job.quarantined"
    ]
    assert len(quarantined) == 2
    assert all(e.fields["attempts"] == 2 for e in quarantined)
    rollup = rollup_events(bus.events)
    assert rollup["jobs"]["quarantined"] == 2
    assert rollup["pool_rebuilds"] >= 2
    assert rollup["worker_deaths"] >= 2
    # batch.end still closes the stream after all the carnage
    assert bus.events[-1].kind == "batch.end"
    assert bus.events[-1].fields["failures"] == 2


# ----------------------------------------------------------------------
# Wall-clock timeouts


def test_timeout_serial(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_SLEEP", "10")
    job = Job(
        arch="shared-l1",
        workload=ckpt_helpers.sleepy_workload,
        scale="test",
        max_cycles=CAP,
        timeout_s=0.3,
    )
    report = Runner(jobs=1).run([job])
    outcome = report.outcomes[0]
    assert outcome.timed_out
    assert outcome.result is None
    assert "budget" in outcome.error
    assert "1 failed (1 timed out)" in report.summary()
    per_job = report.to_dict()["per_job"][0]
    assert per_job["timed_out"] is True
    assert per_job["cycles"] is None


def test_timeout_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_SLEEP", "10")
    batch = [
        Job(
            arch=arch,
            workload=ckpt_helpers.sleepy_workload,
            scale="test",
            max_cycles=CAP,
            timeout_s=0.3,
        )
        for arch in ("shared-l1", "shared-mem")
    ]
    report = Runner(jobs=2).run(batch)
    assert all(o.timed_out for o in report.outcomes)
    assert report.worker_crashes == 0
    assert "(2 timed out)" in report.summary()


def test_parallel_failure_is_recorded_not_raised():
    batch = [
        Job(arch="shared-l1", workload="no-such-workload", scale="test"),
        normal_job("shared-l2"),
    ]
    report = Runner(jobs=2).run(batch)
    bad, good = report.outcomes
    assert bad.result is None and not bad.timed_out
    assert "ConfigError" in bad.error
    assert good.result is not None


def test_serial_failure_still_raises():
    # The historical serial contract: exceptions propagate to the
    # caller (breakpoint-friendly), they are not swallowed.
    with pytest.raises(ConfigError):
        Runner(jobs=1).run(
            [Job(arch="shared-l1", workload="no-such-workload")]
        )


# ----------------------------------------------------------------------
# Execution policy is not simulation identity


def test_policy_fields_do_not_change_job_key(tmp_path):
    plain = normal_job()
    babysat = Job(
        arch=plain.arch,
        workload=plain.workload,
        scale=plain.scale,
        max_cycles=plain.max_cycles,
        timeout_s=120.0,
        ckpt_every=50_000,
        ckpt_dir=str(tmp_path),
    )
    assert plain.key() == babysat.key()
    assert "timeout_s" not in plain.spec()
    assert "ckpt_every" not in plain.spec()


def test_spec_includes_resolved_topology():
    # The cache key must carry the whole machine shape: a 16-core
    # cluster run may never be satisfied by a 4-core entry.
    spec = normal_job().spec()
    assert spec["topology"]["n_cpus"] == spec["n_cpus"]
    assert spec["topology"]["levels"]

    small = Job(arch="cluster-l1", workload="fft", scale="test", n_cpus=4)
    large = Job(arch="cluster-l1", workload="fft", scale="test", n_cpus=16)
    assert small.key() != large.key()
    assert small.spec()["topology"]["levels"][0]["size"] != \
        large.spec()["topology"]["levels"][0]["size"]


def test_spec_distinguishes_topologies_not_just_names():
    # Overrides that change the machine shape change the key too.
    plain = Job(arch="shared-l3", workload="fft", scale="test")
    bigger = Job(
        arch="shared-l3",
        workload="fft",
        scale="test",
        overrides={"l3_size": 1 << 22},
    )
    assert plain.key() != bigger.key()
    assert plain.resolve_topology().level("l3").size != \
        bigger.resolve_topology().level("l3").size


def test_job_auto_resumes_from_latest_checkpoint(tmp_path):
    baseline = normal_job().run()
    job = Job(
        arch="shared-l1",
        workload="fft",
        scale="test",
        max_cycles=CAP,
        ckpt_every=700,
        ckpt_dir=str(tmp_path),
    )
    # Simulate a crashed earlier attempt: a checkpoint saved mid-run
    # under this job's key, with the latest pointer still set.
    partial = System(
        "shared-l1",
        WORKLOADS["fft"](4, FunctionalMemory(), "test"),
        mem_config=config_for_scale("test", 4),
        max_cycles=CAP,
        checkpointing=True,
    )
    partial.run(pause_at=900)
    store = CheckpointStore(tmp_path)
    digest = store.save(snapshot_system(partial), key=job.key())

    resumed = job.run()
    assert resumed.stats.to_dict() == baseline.stats.to_dict()
    assert resumed.extras["checkpoint"]["resumed_from"] == digest
    # Completion clears the pointer, so the next run starts fresh.
    assert store.latest(job.key()) is None


# ----------------------------------------------------------------------
# Batch manifest


def test_manifest_resume_skips_completed_jobs(tmp_path):
    path = tmp_path / "manifest.json"
    batch = [normal_job("shared-l1"), normal_job("shared-mem")]
    first = Runner(jobs=1, manifest=BatchManifest(path)).run(batch)
    assert not first.failures
    assert len(BatchManifest(path)) == 2

    lines = []
    second = Runner(
        jobs=1,
        manifest=BatchManifest(path),
        progress=lines.append,
    ).run(batch)
    assert second.cache_hits == 2
    assert all(o.cached for o in second.outcomes)
    assert all(line.startswith("[manifest]") for line in lines)
    # Skipped jobs still carry full results for figure rendering.
    assert second.outcomes[0].result.stats.to_dict() == \
        first.outcomes[0].result.stats.to_dict()


def test_manifest_does_not_record_failures(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_SLEEP", "10")
    path = tmp_path / "manifest.json"
    job = Job(
        arch="shared-l1",
        workload=ckpt_helpers.sleepy_workload,
        scale="test",
        max_cycles=CAP,
        timeout_s=0.3,
    )
    report = Runner(jobs=1, manifest=BatchManifest(path)).run([job])
    assert report.outcomes[0].timed_out
    assert len(BatchManifest(path)) == 0


def test_manifest_tolerates_garbage_file(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text("{not json")
    manifest = BatchManifest(path)
    assert len(manifest) == 0
    job = normal_job()
    report = Runner(jobs=1, manifest=manifest).run([job])
    assert not report.failures
    payload = json.loads(path.read_text())
    assert job.key() in payload["jobs"]


# ----------------------------------------------------------------------
# ResultCache under concurrent writers


def test_result_cache_concurrent_writers_never_tear(tmp_path):
    """Several processes hammering the same cache key must only ever
    observe complete entries (atomic tmp+rename), never torn JSON."""
    n_procs, rounds = 4, 40
    with ProcessPoolExecutor(max_workers=n_procs) as pool:
        futures = [
            pool.submit(
                ckpt_helpers.cache_stress_worker, str(tmp_path), rounds
            )
            for _ in range(n_procs)
        ]
        reads = [future.result(timeout=120) for future in futures]
    # Every worker's asserts passed; most reads should have succeeded.
    assert sum(reads) > 0
    # The final on-disk entry is complete, parseable JSON.
    cache = ResultCache(tmp_path)
    job = Job(arch="shared-l1", workload="ear", scale="test")
    payload = json.loads(cache.path_for(job).read_text())
    assert payload["key"] == job.key()
    final = cache.get(job)
    assert final is not None
    assert final.stats.cycles >= 1000
    # No leftover temp files from interrupted writers.
    assert not list(tmp_path.rglob("*.tmp"))
