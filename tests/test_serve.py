"""Tests for the simulation service: wire format, queue, daemon, client.

The end-to-end tests run a real :class:`ServiceDaemon` on an ephemeral
port and talk to it over actual HTTP with :class:`ServiceClient` —
submission, polling, result fetch, dedup of identical specs across
concurrent clients, cancellation of queued and running jobs, worker
SIGKILL recovery, event streaming, metrics, and the shutdown manifest
→ ``--resume`` round trip.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.runner import Job, ResultCache
from repro.errors import ReproError
from repro.serve import (
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    WireError,
    job_from_payload,
    job_to_payload,
)
from repro.serve.queue import (
    CANCELLED,
    QUEUED,
    RUNNING,
    JobQueue,
    QueueManifest,
)

FAST = {"workload": "fft", "arch": "shared-l2", "n_cpus": 4}
#: ~1 s inside a worker: long enough to catch "running" reliably.
SLOW = {"workload": "ocean", "arch": "shared-l2", "scale": "bench",
        "n_cpus": 4}


# ----------------------------------------------------------------------
# wire format


def test_wire_round_trip_preserves_identity():
    job = Job(
        arch="cluster-l1",
        workload="ear",
        scale="bench",
        n_cpus=8,
        overrides={"l2_assoc": 4},
        timeout_s=30.0,
    )
    restored = job_from_payload(job_to_payload(job, priority=2))
    assert restored.key() == job.key()
    assert restored.overrides == {"l2_assoc": 4}
    assert restored.timeout_s == 30.0


def test_wire_payload_omits_defaults():
    payload = job_to_payload(Job(arch="shared-l2", workload="fft"))
    assert payload["workload"] == "fft"
    assert "overrides" not in payload
    assert "replay" not in payload
    assert "priority" not in payload


def test_wire_rejects_unknown_fields():
    with pytest.raises(WireError, match="unknown job field"):
        job_from_payload({**FAST, "archs": "typo"})


def test_wire_rejects_bad_types():
    with pytest.raises(WireError, match="n_cpus"):
        job_from_payload({**FAST, "n_cpus": "four"})
    with pytest.raises(WireError, match="n_cpus"):
        job_from_payload({**FAST, "n_cpus": True})
    with pytest.raises(WireError, match="override"):
        job_from_payload({**FAST, "overrides": {"l2_assoc": "big"}})


def test_wire_requires_workload_and_arch():
    with pytest.raises(WireError, match="workload"):
        job_from_payload({"arch": "shared-l2"})
    with pytest.raises(WireError, match="arch"):
        job_from_payload({"workload": "fft"})


def test_wire_defaults_cpus_from_preset():
    job = job_from_payload({"workload": "fft", "arch": "cluster-l1"})
    from repro.mem.topology import get_preset

    assert job.n_cpus == get_preset("cluster-l1").default_cpus


def test_wire_rejects_factory_workloads():
    def factory(n_cpus, functional, scale):
        raise AssertionError("never called")

    with pytest.raises(WireError, match="registry-named"):
        job_to_payload(Job(arch="shared-l2", workload=factory))


# ----------------------------------------------------------------------
# job queue


def _job(**kwargs) -> Job:
    base = dict(arch="shared-l2", workload="fft", n_cpus=4)
    base.update(kwargs)
    return Job(**base)


def test_queue_orders_by_priority_then_submission():
    queue = JobQueue()
    late, _ = queue.submit(_job(workload="ear"), priority=5)
    urgent, _ = queue.submit(_job(workload="fft"), priority=-1)
    normal, _ = queue.submit(_job(workload="mp3d"), priority=0)
    claimed = [queue.claim(timeout=0.1).id for _ in range(3)]
    assert claimed == [urgent.id, normal.id, late.id]


def test_queue_dedups_identical_specs():
    queue = JobQueue()
    first, deduped_first = queue.submit(_job())
    second, deduped_second = queue.submit(_job())
    assert not deduped_first and deduped_second
    assert first is second
    assert first.submits == 2
    # only one claimable entry exists
    assert queue.claim(timeout=0.05) is first
    assert queue.claim(timeout=0.05) is None


def test_queue_resubmit_after_failure_starts_fresh():
    queue = JobQueue()
    record, _ = queue.submit(_job())
    queue.mark_running(record)
    queue.fail(record, "boom")
    fresh, deduped = queue.submit(_job())
    assert not deduped
    assert fresh.state == QUEUED
    assert fresh.id == record.id  # same content address


def test_queue_cancel_semantics():
    queue = JobQueue()
    record, _ = queue.submit(_job())
    assert queue.cancel("no-such-id") is None
    assert queue.cancel(record.id) == CANCELLED
    # the heap entry is now stale: claim must skip it
    assert queue.claim(timeout=0.05) is None
    # a claimed-then-cancelled record cannot be marked running
    running, _ = queue.submit(_job(workload="ear"))
    claimed = queue.claim(timeout=0.1)
    queue.cancel(claimed.id)
    assert queue.mark_running(claimed) is False
    # cancel of a running record only requests it
    other, _ = queue.submit(_job(workload="mp3d"))
    queue.mark_running(other)
    assert queue.cancel(other.id) == RUNNING
    assert other.cancel_requested


def test_queue_manifest_round_trip(tmp_path):
    queue = JobQueue()
    record, _ = queue.submit(_job(overrides={"l2_assoc": 2}), priority=3)
    manifest = QueueManifest(tmp_path / "manifest.json")
    manifest.write(queue.pending())
    entries = manifest.load()
    assert len(entries) == 1
    restored = job_from_payload(entries[0]["job"])
    assert restored.key() == record.id
    assert entries[0]["priority"] == 3
    manifest.clear()
    assert manifest.load() == []


def test_queue_manifest_tolerates_garbage(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text("not json {")
    assert QueueManifest(path).load() == []
    path.write_text(json.dumps({"jobs": [42, {"nojob": 1}]}))
    assert QueueManifest(path).load() == []


# ----------------------------------------------------------------------
# result-cache hardening


def test_result_cache_evicts_mismatched_content_address(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job_a = _job()
    job_b = _job(workload="ear")
    cache.put(job_a, job_a.run())
    # file job_a's entry under job_b's address: the read-time audit
    # must refuse to serve it and evict the misplaced entry
    path_b = cache.path_for(job_b)
    path_b.parent.mkdir(parents=True, exist_ok=True)
    path_b.write_text(cache.path_for(job_a).read_text())
    assert cache.get(job_b) is None
    assert cache.evictions == 1
    assert not path_b.exists()
    # the legitimate entry still serves
    assert cache.get(job_a) is not None


# ----------------------------------------------------------------------
# end-to-end over HTTP


@contextlib.contextmanager
def running_daemon(
    tmp_path, jobs=2, resume=False, state=None, **kwargs
):
    """A started daemon on an ephemeral port, always shut down."""
    cache_dir = kwargs.pop("cache_dir", tmp_path / "cache")
    cache = (
        None if kwargs.pop("no_cache", False) else ResultCache(cache_dir)
    )
    daemon = ServiceDaemon(
        port=0,
        jobs=jobs,
        cache=cache,
        state_dir=state if state is not None else tmp_path / "serve",
        **kwargs,
    )
    daemon.start(resume=resume)
    try:
        yield daemon, ServiceClient(f"http://127.0.0.1:{daemon.port}")
    finally:
        daemon.shutdown(grace=15.0)


def test_service_submit_poll_fetch_differential(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        response = client.submit(FAST)
        assert response["state"] in ("queued", "running", "done")
        status = client.wait(response["id"], timeout=60)
        assert status["state"] == "done"
        assert status["attempts"] == 1
        served = client.result(response["id"])
        assert daemon.scheduler.executed == 1
    local = job_from_payload(FAST).run()
    # the simulations are deterministic: the service result must be
    # bit-identical to an in-process run of the same spec
    assert served.stats.to_dict() == local.stats.to_dict()
    assert served.extras.get("sync") == local.extras.get("sync")


def test_concurrent_clients_dedup_to_single_simulation(tmp_path):
    specs = [FAST, FAST, {**FAST, "workload": "ear"},
             {**FAST, "workload": "ear"}]
    with running_daemon(tmp_path) as (daemon, client):
        def submit_and_wait(spec):
            own = ServiceClient(client.server)
            job_id = own.submit(spec)["id"]
            own.wait(job_id, timeout=60)
            return own.result(job_id).stats.cycles

        with ThreadPoolExecutor(max_workers=4) as pool:
            cycles = list(pool.map(submit_and_wait, specs))
        # identical specs from different clients returned identical
        # results from ONE simulation each: 4 submissions, 2 runs
        assert cycles[0] == cycles[1]
        assert cycles[2] == cycles[3]
        assert daemon.scheduler.executed == 2
        assert daemon.cache.stores == 2
        records = daemon.queue.records()
        assert len(records) == 2
        assert sorted(r.submits for r in records) == [2, 2]


def test_cached_spec_returns_instantly_on_fresh_daemon(tmp_path):
    cache_dir = tmp_path / "shared-cache"
    with running_daemon(tmp_path, cache_dir=cache_dir) as (_, client):
        job_id = client.submit(FAST)["id"]
        client.wait(job_id, timeout=60)
    # a brand-new daemon sharing the cache directory must serve the
    # same spec from the store without simulating
    with running_daemon(
        tmp_path, cache_dir=cache_dir, state=tmp_path / "serve2"
    ) as (daemon, client):
        response = client.submit(FAST)
        assert response["state"] == "cached"
        status = client.status(response["id"])
        assert status["state"] == "cached"
        assert daemon.scheduler.executed == 0
        assert daemon.cache.hits >= 1
        served = client.result(response["id"])
        assert served.stats.cycles > 0


def test_cancel_queued_job_never_runs(tmp_path):
    with running_daemon(tmp_path, jobs=1) as (daemon, client):
        slow_id = client.submit(SLOW)["id"]
        fast_id = client.submit(FAST)["id"]  # stuck behind the slow one
        response = client.cancel(fast_id)
        assert response["state"] == "cancelled"
        assert client.wait(slow_id, timeout=120)["state"] == "done"
        assert client.status(fast_id)["state"] == "cancelled"
        # give the dispatcher a beat: the cancelled record must never
        # reach the pool
        time.sleep(0.5)
        assert daemon.scheduler.executed == 1
        document = client.result_payload(slow_id)
        assert document["result"]["stats"]["cycles"] > 0


def test_cancel_running_job_discards_result(tmp_path):
    with running_daemon(tmp_path, jobs=1) as (daemon, client):
        job_id = client.submit(SLOW)["id"]
        deadline = time.monotonic() + 60
        while client.status(job_id)["state"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.01)
        response = client.cancel(job_id)
        assert response["cancel_requested"] or response[
            "state"
        ] == "cancelled"
        status = client.wait(job_id, timeout=120)
        assert status["state"] == "cancelled"
        # the result was discarded, not published
        with pytest.raises(ServiceError) as excinfo:
            client.result_payload(job_id)
        assert excinfo.value.code == 409
        assert daemon.cache.stores == 0


def test_sigkilled_worker_retries_and_serves_correct_result(tmp_path):
    with running_daemon(tmp_path, jobs=2) as (daemon, client):
        job_id = client.submit(SLOW)["id"]
        deadline = time.monotonic() + 60
        while client.status(job_id)["state"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.01)
        victims = daemon.scheduler.session.pids()
        assert victims, "warm pool has no workers"
        for pid in victims:
            with contextlib.suppress(ProcessLookupError):
                os.kill(pid, signal.SIGKILL)
        status = client.wait(job_id, timeout=180)
        assert status["state"] == "done"
        assert status["attempts"] >= 2
        served = client.result(job_id)
        metrics = client.metrics()
        assert "repro_pool_rebuilds_total 1" in metrics
    local = job_from_payload(SLOW).run()
    assert served.stats.to_dict() == local.stats.to_dict()


def test_event_stream_follows_job_to_completion(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        job_id = client.submit(FAST)["id"]
        events = list(client.watch(job_id))
        kinds = [event["kind"] for event in events]
        assert kinds[-1] == "serve.state"
        assert events[-1]["state"] in ("done", "cached")
        assert "job.finish" in kinds or "job.cached" in kinds
        # every routed event belongs to this job
        assert all(
            event.get("tag") == job_id
            for event in events
            if event["kind"] != "serve.state"
        )


def test_metrics_and_queue_endpoints(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        job_id = client.submit(FAST)["id"]
        client.wait(job_id, timeout=60)
        metrics = client.metrics()
        assert 'repro_jobs_total{status="ok"} 1' in metrics
        assert 'repro_service_jobs{state="done"} 1' in metrics
        assert "repro_service_executed_total 1" in metrics
        document = client.queue()
        assert document["counts"] == {"done": 1}
        assert document["accepting"] is True
        health = client.health()
        assert health["ok"] and health["workers"] == 2
        cache_doc = client.cache()
        assert cache_doc["enabled"]
        assert cache_doc["disk"]["entries"] == 1


def test_http_error_paths(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("f" * 64)
        assert excinfo.value.code == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"workload": "fft"})  # missing arch
        assert excinfo.value.code == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit({**FAST, "workload": "no-such-workload"})
        assert excinfo.value.code == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.code == 404
        # result of an unfinished job is a 409, not a hang
        slow_id = client.submit(SLOW)["id"]
        with pytest.raises(ServiceError) as excinfo:
            client.result_payload(slow_id)
        assert excinfo.value.code == 409
        client.wait(slow_id, timeout=120)


def test_submit_rejected_while_shutting_down(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        daemon._accepting = False
        with pytest.raises(ServiceError) as excinfo:
            client.submit(FAST)
        assert excinfo.value.code == 503
        daemon._accepting = True  # let teardown drain normally


def test_shutdown_persists_manifest_and_resume_reenqueues(tmp_path):
    state = tmp_path / "serve-state"
    daemon = ServiceDaemon(
        port=0,
        jobs=1,
        cache=ResultCache(tmp_path / "cache"),
        state_dir=state,
    )
    daemon.start()
    client = ServiceClient(f"http://127.0.0.1:{daemon.port}")
    try:
        running_id = client.submit(SLOW)["id"]
        queued_ids = [
            client.submit({**FAST, "workload": workload})["id"]
            for workload in ("ear", "mp3d")
        ]
        deadline = time.monotonic() + 60
        while client.status(running_id)["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
    finally:
        # grace too short to drain: the running job is killed and the
        # queued ones never start — all three must be persisted
        daemon.shutdown(grace=0.1)
    manifest = QueueManifest(state / "queue_manifest.json")
    persisted = {entry["id"] for entry in manifest.load()}
    assert persisted == {running_id, *queued_ids}
    with running_daemon(
        tmp_path, jobs=1, state=state, resume=True
    ) as (daemon2, client2):
        restored = {record.id for record in daemon2.queue.records()}
        assert restored == persisted
        # resumed work actually completes
        assert client2.wait(running_id, timeout=120)["state"] == "done"
    # the fresh shutdown drained fully, so the manifest is gone
    assert manifest.load() == []


def test_runner_session_incremental_submit_and_rebuild(tmp_path):
    from repro.core.runner import Runner

    session = Runner(jobs=1).session()
    try:
        future, generation = session.submit(_job())
        assert future.result(timeout=120).stats.cycles > 0
        assert generation == 0
        # first rebuild of a generation wins; replays are no-ops
        assert session.rebuild(generation) is True
        assert session.rebuild(generation) is False
        assert session.generation == 1
        future, generation = session.submit(_job(workload="ear"))
        assert generation == 1
        assert future.result(timeout=120).stats.cycles > 0
    finally:
        session.close(force=True)
    with pytest.raises(RuntimeError):
        session.submit(_job())


# ----------------------------------------------------------------------
# CLI integration


def test_cli_client_submit_wait_and_cache_stats(tmp_path, capsys):
    from repro.cli import main

    with running_daemon(tmp_path) as (daemon, client):
        server = client.server
        rc = main([
            "client", "submit", "--workload", "fft", "--arch",
            "shared-l2", "--wait", "--server", server,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "state" in out and "cycles" in out
        rc = main(["client", "queue", "--server", server])
        assert rc == 0
        assert "1 done" in capsys.readouterr().out
        rc = main(["cache", "stats", "--server", server, "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["disk"]["entries"] == 1
    rc = main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "entries  1" in out


def test_cli_serve_rejects_checkpoint_policy_without_dir(capsys):
    from repro.cli import main

    rc = main(["serve", "--checkpoint-every", "1000"])
    assert rc == 2
    assert "--checkpoint-dir" in capsys.readouterr().err
