"""Unit tests driving the shared-L1 memory system directly."""

import pytest

from repro.core.configs import test_config as make_test_config
from repro.mem.shared_l1 import SharedL1System
from repro.mem.types import AccessKind, StallLevel
from repro.sim.stats import SystemStats


@pytest.fixture
def system():
    config = make_test_config()
    config.shared_l1_optimistic = False
    stats = SystemStats.for_cpus(4)
    return SharedL1System(config, stats)


@pytest.fixture
def optimistic():
    config = make_test_config()
    config.shared_l1_optimistic = True
    stats = SystemStats.for_cpus(4)
    return SharedL1System(config, stats)


ADDR = 0x1000_0000


def warm(system, addr=ADDR, cpu=0):
    """Fill the line (load that misses all the way to memory)."""
    return system.access(cpu, AccessKind.LOAD, addr, 0)


def test_cold_load_goes_to_memory(system):
    result = warm(system)
    # 3-cycle L1 probe + L2 tag + memory latency
    assert result.level == StallLevel.MEM
    assert result.done >= system.config.mem_latency


def test_warm_load_hits_with_crossbar_latency(system):
    warm(system)
    result = system.access(0, AccessKind.LOAD, ADDR, 100)
    assert result.level == StallLevel.L1
    assert result.done == 100 + system.config.shared_l1_latency


def test_optimistic_hit_is_single_cycle(optimistic):
    warm(optimistic)
    result = optimistic.access(0, AccessKind.LOAD, ADDR, 100)
    assert result.level == StallLevel.NONE
    assert result.done == 101


def test_other_cpus_hit_on_shared_fill(system):
    """The prefetch-for-each-other effect: CPU 1 hits what CPU 0 fetched."""
    warm(system, cpu=0)
    result = system.access(1, AccessKind.LOAD, ADDR, 100)
    assert result.level == StallLevel.L1  # hit, crossbar latency only


def test_l2_hit_after_l1_eviction(system):
    warm(system)
    # Evict the line from the (tiny test-scale) shared L1 by filling
    # conflicting addresses; the L2 still holds it.
    way_span = system.l1d.n_sets * system.config.line_size
    t = 200
    for k in range(1, system.l1d.assoc + 1):
        t = system.access(0, AccessKind.LOAD, ADDR + k * way_span, t).done
    assert not system.l1d.contains(ADDR)
    assert system.l2.contains(ADDR)
    result = system.access(0, AccessKind.LOAD, ADDR, t + 10)
    assert result.level == StallLevel.L2


def test_store_is_posted(optimistic):
    result = optimistic.access(0, AccessKind.STORE, ADDR, 50)
    assert result.done == 51
    assert result.level == StallLevel.NONE
    # Visibility lags: the write-allocate fill goes to memory.
    assert result.visible_cycle > 51


def test_store_conditional_blocks(optimistic):
    result = optimistic.access(0, AccessKind.STORE_COND, ADDR, 50)
    assert result.done == result.visible_cycle
    assert result.done > 51


def test_store_buffer_fills_and_stalls(optimistic):
    depth = optimistic.config.write_buffer_depth
    line = optimistic.config.line_size
    stalled = False
    t = 0
    for i in range(depth + 2):
        result = optimistic.access(0, AccessKind.STORE, ADDR + i * line, t)
        if result.level == StallLevel.STOREBUF:
            stalled = True
        t = result.done
    assert stalled


def test_store_marks_line_dirty_and_writeback_on_eviction(optimistic):
    optimistic.access(0, AccessKind.STORE, ADDR, 0)
    from repro.mem.cache import LineState

    assert optimistic.l1d.state_of(ADDR) == LineState.MODIFIED
    way_span = optimistic.l1d.n_sets * optimistic.config.line_size
    t = 300
    for k in range(1, optimistic.l1d.assoc + 1):
        t = optimistic.access(0, AccessKind.LOAD, ADDR + k * way_span, t).done
    stats = optimistic.stats.cache("shared.l1d")
    assert stats.writebacks >= 1


def test_ifetch_counts_misses_on_l1i(system):
    pc = 0x0040_0000
    result = system.access(0, AccessKind.IFETCH, pc, 0)
    assert result.done > 1
    assert system.stats.cache("cpu0.l1i").misses == 1
    # refetch hits
    result = system.access(0, AccessKind.IFETCH, pc, 200)
    assert result.done == 201


def test_icache_private_per_cpu(system):
    pc = 0x0040_0000
    system.access(0, AccessKind.IFETCH, pc, 0)
    result = system.access(1, AccessKind.IFETCH, pc, 200)
    assert result.done > 201  # CPU 1 misses separately
    assert system.stats.cache("cpu1.l1i").misses == 1


def test_bank_conflicts_under_detailed_model(system):
    """Two CPUs touching the same bank in the same cycle serialize."""
    warm(system, ADDR, cpu=0)
    warm(system, ADDR + 32 * system.config.n_l1_banks, cpu=1)  # same bank
    a = system.access(0, AccessKind.LOAD, ADDR, 1000)
    b = system.access(
        1, AccessKind.LOAD, ADDR + 32 * system.config.n_l1_banks, 1000
    )
    assert b.done > a.done  # queued behind CPU 0 in the bank


def test_no_bank_conflicts_when_optimistic(optimistic):
    warm(optimistic, ADDR, cpu=0)
    warm(optimistic, ADDR + 32 * optimistic.config.n_l1_banks, cpu=1)
    a = optimistic.access(0, AccessKind.LOAD, ADDR, 1000)
    b = optimistic.access(
        1, AccessKind.LOAD, ADDR + 32 * optimistic.config.n_l1_banks, 1000
    )
    assert a.done == b.done == 1001


def test_miss_rates_accumulate(system):
    warm(system)
    stats = system.stats.cache("shared.l1d")
    assert stats.reads == 1
    assert stats.misses_repl == 1
    system.access(0, AccessKind.LOAD, ADDR, 500)
    assert stats.reads == 2
    assert stats.misses == 1


def test_l2_stats_track_accesses(system):
    warm(system)
    l2 = system.stats.cache("chip.l2")
    assert l2.reads == 1
    assert l2.misses == 1
