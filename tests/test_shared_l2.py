"""Unit tests driving the shared-L2 memory system directly."""

import pytest

from repro.core.configs import test_config as make_test_config
from repro.mem.shared_l2 import SharedL2System
from repro.mem.types import AccessKind, StallLevel
from repro.sim.stats import SystemStats

ADDR = 0x1000_0000


@pytest.fixture
def system():
    stats = SystemStats.for_cpus(4)
    return SharedL2System(make_test_config(), stats)


def test_cold_load_misses_to_memory(system):
    result = system.access(0, AccessKind.LOAD, ADDR, 0)
    assert result.level == StallLevel.MEM
    assert result.done >= system.config.mem_latency


def test_warm_load_hits_l1_in_one_cycle(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    result = system.access(0, AccessKind.LOAD, ADDR, 100)
    assert result.done == 101
    assert result.level == StallLevel.NONE


def test_l1_miss_l2_hit_pays_crossbar_latency(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    # Another CPU misses its own L1 but hits the shared L2.
    result = system.access(1, AccessKind.LOAD, ADDR, 100)
    assert result.level == StallLevel.L2
    assert result.done == 100 + 1 + system.config.shared_l2_latency


def test_store_releases_cpu_after_one_cycle(system):
    result = system.access(0, AccessKind.STORE, ADDR, 10)
    assert result.done == 11
    assert result.level == StallLevel.NONE
    assert result.visible_cycle > 11  # drain to the L2


def test_write_invalidates_other_l1_copies(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    system.access(1, AccessKind.LOAD, ADDR, 100)
    assert system.l1d[1].contains(ADDR)
    system.access(0, AccessKind.STORE, ADDR, 200)
    assert not system.l1d[1].contains(ADDR)
    assert system.stats.cache("cpu1.l1d").invalidations_received == 1
    # The re-read is an invalidation miss.
    system.access(1, AccessKind.LOAD, ADDR, 300)
    assert system.stats.cache("cpu1.l1d").read_misses_inval == 1


def test_writer_keeps_own_copy(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    system.access(0, AccessKind.STORE, ADDR, 100)
    assert system.l1d[0].contains(ADDR)


def test_store_miss_does_not_allocate_in_l1(system):
    system.access(0, AccessKind.STORE, ADDR, 0)
    assert not system.l1d[0].contains(ADDR)


def test_store_allocates_in_l2(system):
    system.access(0, AccessKind.STORE, ADDR, 0)
    assert system.l2.contains(ADDR)
    from repro.mem.cache import LineState

    assert system.l2.state_of(ADDR) == LineState.MODIFIED


def test_directory_tracks_l1_fills(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    system.access(2, AccessKind.LOAD, ADDR, 100)
    line_addr = ADDR // system.config.line_size
    assert system.directory.holders(line_addr) == [0, 2]


def test_l2_replacement_invalidates_l1_copies_as_replacement(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    # Conflict the (direct-mapped at test scale) L2 set.
    t = 100
    for k in range(1, system.l2.assoc + 1):
        t = system.access(
            0, AccessKind.LOAD, ADDR + k * system.l2.size, t
        ).done
    assert not system.l2.contains(ADDR)
    assert not system.l1d[0].contains(ADDR)
    # Replacement-caused: the next miss is a replacement miss.
    before = system.stats.cache("cpu0.l1d").read_misses_inval
    system.access(0, AccessKind.LOAD, ADDR, t + 10)
    assert system.stats.cache("cpu0.l1d").read_misses_inval == before


def test_sc_waits_for_drain(system):
    result = system.access(0, AccessKind.STORE_COND, ADDR, 10)
    assert result.done == result.visible_cycle
    assert result.done > 11


def test_write_buffer_stalls_when_full(system):
    depth = system.config.write_buffer_depth
    line = system.config.line_size
    # Fill the L2 with the target lines first so drains are fast but
    # non-zero; then fire stores back-to-back at one cycle apart.
    stalled = False
    t = 0
    for i in range(depth * 3):
        result = system.access(0, AccessKind.STORE, ADDR + i * line, t)
        if result.level == StallLevel.STOREBUF:
            stalled = True
        t += 1
    assert stalled


def test_word_drains_hold_port_one_cycle(system):
    """Two drains to different banks from one CPU serialize by 1 cycle
    each at the port, not the full line occupancy."""
    # Warm the L2 so drains hit.
    system.access(0, AccessKind.LOAD, ADDR, 0)
    system.access(0, AccessKind.LOAD, ADDR + 32, 0)
    port = system.crossbar.ports[0]
    free_before = port.next_free
    t = 1000
    system.access(0, AccessKind.STORE, ADDR, t)
    system.access(0, AccessKind.STORE, ADDR + 32, t)
    assert port.next_free == t + 2  # 2 one-cycle holds
    assert free_before <= t


def test_ifetch_shares_l2(system):
    pc = 0x0040_0000
    system.access(0, AccessKind.IFETCH, pc, 0)
    # Second CPU's I-miss hits the shared L2.
    result = system.access(1, AccessKind.IFETCH, pc, 200)
    assert result.level == StallLevel.L2


def test_drain_reports_pending_writes(system):
    system.access(0, AccessKind.STORE, ADDR, 10)
    assert system.drain(11) > 11
