"""Unit tests driving the bus-based shared-memory system directly."""

import pytest

from repro.core.configs import test_config as make_test_config
from repro.mem.cache import LineState
from repro.mem.shared_mem import SharedMemorySystem
from repro.mem.types import AccessKind, StallLevel
from repro.sim.stats import SystemStats

ADDR = 0x1000_0000


@pytest.fixture
def system():
    stats = SystemStats.for_cpus(4)
    return SharedMemorySystem(make_test_config(), stats)


def test_cold_load_uses_bus_memory(system):
    result = system.access(0, AccessKind.LOAD, ADDR, 0)
    assert result.level == StallLevel.MEM
    assert result.done >= system.config.bus.mem_latency


def test_unshared_fill_is_exclusive(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    assert system.l1d[0].state_of(ADDR) == LineState.EXCLUSIVE
    assert system.l2[0].state_of(ADDR) == LineState.EXCLUSIVE


def test_second_reader_gets_shared_copies(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    result = system.access(1, AccessKind.LOAD, ADDR, 200)
    assert result.level == StallLevel.MEM  # clean copy: memory supplies
    assert system.l1d[0].state_of(ADDR) == LineState.SHARED
    assert system.l1d[1].state_of(ADDR) == LineState.SHARED


def test_dirty_remote_copy_supplies_cache_to_cache(system):
    system.access(0, AccessKind.STORE, ADDR, 0)
    assert system.l1d[0].state_of(ADDR) == LineState.MODIFIED
    result = system.access(1, AccessKind.LOAD, ADDR, 500)
    assert result.level == StallLevel.C2C
    assert system.stats.c2c_transfers == 1
    # The owner keeps a shared copy.
    assert system.l1d[0].state_of(ADDR) == LineState.SHARED


def test_write_hit_on_exclusive_is_silent(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    result = system.access(0, AccessKind.STORE, ADDR, 200)
    assert result.done == 201
    assert system.l1d[0].state_of(ADDR) == LineState.MODIFIED
    assert system.l2[0].state_of(ADDR) == LineState.MODIFIED
    assert system.bus.upgrades == 0


def test_write_hit_on_shared_upgrades(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    system.access(1, AccessKind.LOAD, ADDR, 200)
    system.access(0, AccessKind.STORE, ADDR, 400)
    assert system.bus.upgrades == 1
    assert not system.l1d[1].contains(ADDR)
    # CPU 1's re-read is an invalidation miss serviced cache-to-cache.
    result = system.access(1, AccessKind.LOAD, ADDR, 600)
    assert result.level == StallLevel.C2C
    assert system.stats.cache("cpu1.l1d").read_misses_inval == 1


def test_write_miss_with_remote_dirty_copy(system):
    system.access(0, AccessKind.STORE, ADDR, 0)
    result = system.access(1, AccessKind.STORE, ADDR, 500)
    assert result.visible_cycle > 500
    assert not system.l1d[0].contains(ADDR)
    assert system.l1d[1].state_of(ADDR) == LineState.MODIFIED


def test_stores_are_posted_and_fifo_visible(system):
    first = system.access(0, AccessKind.STORE, ADDR, 0)
    second = system.access(0, AccessKind.STORE, ADDR + 32, 1)
    assert first.done == 1
    assert second.done == 2
    assert second.visible_cycle >= first.visible_cycle


def test_sc_is_not_posted(system):
    result = system.access(0, AccessKind.STORE_COND, ADDR, 0)
    assert result.done == result.visible_cycle
    assert result.done > 1


def test_private_l2_hit(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    # Evict from (tiny) L1 with conflicting lines.
    way_span = system.l1d[0].n_sets * system.config.line_size
    t = 200
    for k in range(1, system.l1d[0].assoc + 1):
        t = system.access(0, AccessKind.LOAD, ADDR + k * way_span, t).done
    assert not system.l1d[0].contains(ADDR)
    result = system.access(0, AccessKind.LOAD, ADDR, t + 10)
    assert result.level == StallLevel.L2


def test_l2s_are_private(system):
    system.access(0, AccessKind.LOAD, ADDR, 0)
    assert system.l2[0].contains(ADDR)
    assert not system.l2[1].contains(ADDR)


def test_mesi_invariants_after_traffic(system):
    t = 0
    for i in range(40):
        cpu = i % 4
        kind = AccessKind.STORE if i % 3 == 0 else AccessKind.LOAD
        addr = ADDR + (i % 7) * 32
        t = system.access(cpu, kind, addr, t).done
    system.snoop.check_invariants()


def test_bus_serializes_misses(system):
    a = system.access(0, AccessKind.LOAD, ADDR, 0)
    b = system.access(1, AccessKind.LOAD, ADDR + 4096, 0)
    assert b.done > a.done  # queued on the single bus


def test_ifetch_through_own_l2_and_bus(system):
    pc = 0x0040_0000
    result = system.access(0, AccessKind.IFETCH, pc, 0)
    assert result.level == StallLevel.MEM
    result = system.access(0, AccessKind.IFETCH, pc, 200)
    assert result.done == 201
