"""Property-based tests over whole simulations.

Hypothesis generates small random programs; every architecture and CPU
model must run them to completion with consistent accounting, identical
committed instruction streams, and intact coherence invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import test_config as make_test_config
from repro.core.system import System
from repro.isa.instructions import OpClass
from repro.mem.functional import FunctionalMemory
from repro.workloads.base import Workload

_OPS = (
    OpClass.IALU,
    OpClass.IMUL,
    OpClass.FADD_DP,
    OpClass.FMUL_DP,
)

# A step is (kind, operand): kind 0 = compute op, 1 = load, 2 = store.
_step = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=15),
)
_program = st.lists(_step, min_size=5, max_size=60)


class RandomWorkload(Workload):
    """Every CPU runs the same random step list over its own lines,
    except a designated shared region touched by everyone."""

    name = "random"

    def __init__(self, n_cpus, functional, steps=(), share_every=5):
        super().__init__(n_cpus, functional)
        self.steps = list(steps)
        self.share_every = share_every
        self.region = self.code.region("rand", 128)
        self.private = [
            self.data.alloc_array(16, 32) for _ in range(n_cpus)
        ]
        self.shared = self.data.alloc_array(16, 32)

    def program(self, cpu_id):
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        for index, (kind, operand) in enumerate(self.steps):
            shared = index % self.share_every == 0
            base = self.shared if shared else self.private[cpu_id]
            addr = base + (operand % 16) * 32
            if kind == 0:
                yield em.op(_OPS[operand % len(_OPS)])
            elif kind == 1:
                yield em.load(addr)
            else:
                yield em.store(addr)


def _run(arch, steps, cpu_model="mipsy"):
    functional = FunctionalMemory()
    workload = RandomWorkload(2, functional, steps=steps)
    system = System(
        arch,
        workload,
        cpu_model=cpu_model,
        mem_config=make_test_config(2),
        max_cycles=500_000,
    )
    stats = system.run()
    return stats, system


@given(_program)
@settings(max_examples=30, deadline=None)
def test_random_programs_complete_everywhere(steps):
    for arch in ("shared-l1", "shared-l2", "shared-mem"):
        stats, system = _run(arch, steps)
        assert not system.truncated
        assert stats.instructions == 2 * len(steps)


@given(_program)
@settings(max_examples=20, deadline=None)
def test_busy_cycles_equal_instructions_under_mipsy(steps):
    stats, _ = _run("shared-l2", steps)
    assert stats.aggregate_breakdown().busy == stats.instructions


@given(_program)
@settings(max_examples=20, deadline=None)
def test_accounting_never_exceeds_runtime(steps):
    for arch in ("shared-l1", "shared-mem"):
        stats, system = _run(arch, steps)
        for cpu in system.cpus:
            assert stats.breakdowns[cpu.cpu_id].total <= cpu.resume


@given(_program)
@settings(max_examples=20, deadline=None)
def test_mesi_invariants_hold_after_random_traffic(steps):
    _stats, system = _run("shared-mem", steps)
    system.memory.snoop.check_invariants()


@given(_program)
@settings(max_examples=15, deadline=None)
def test_mxs_commits_the_same_instructions(steps):
    mipsy_stats, _ = _run("shared-l2", steps, cpu_model="mipsy")
    mxs_stats, system = _run("shared-l2", steps, cpu_model="mxs")
    assert mxs_stats.instructions == mipsy_stats.instructions
    for cpu in system.cpus:
        assert len(cpu.rob) == 0


@given(_program)
@settings(max_examples=15, deadline=None)
def test_mxs_slot_accounting_identity(steps):
    stats, _ = _run("shared-mem", steps, cpu_model="mxs")
    for mxs in stats.mxs:
        assert mxs.slots_total == 2 * mxs.cycles


@given(_program)
@settings(max_examples=10, deadline=None)
def test_runs_are_deterministic(steps):
    first, _ = _run("shared-l1", steps)
    second, _ = _run("shared-l1", steps)
    assert first.cycles == second.cycles
    assert first.instructions == second.instructions
    assert (
        first.aggregate_breakdown().as_dict()
        == second.aggregate_breakdown().as_dict()
    )


@given(_program)
@settings(max_examples=10, deadline=None)
def test_cache_capacity_respected_during_runs(steps):
    _stats, system = _run("shared-l1", steps)
    cache = system.memory.l1d
    for set_index in range(cache.n_sets):
        assert cache.set_occupancy(set_index) <= cache.assoc
