"""Cross-checks on statistic accounting the reports depend on."""

import pytest

from repro.core.configs import test_config as make_test_config
from repro.mem.shared_l1 import SharedL1System
from repro.mem.shared_l2 import SharedL2System
from repro.mem.shared_mem import SharedMemorySystem
from repro.mem.types import AccessKind
from repro.sim.stats import SystemStats

ADDR = 0x1000_0000
LINE = 32


def _make(cls, **overrides):
    config = make_test_config()
    for key, value in overrides.items():
        setattr(config, key, value)
    stats = SystemStats.for_cpus(4)
    return cls(config, stats), stats


@pytest.mark.parametrize(
    "cls", (SharedL1System, SharedL2System, SharedMemorySystem)
)
def test_read_and_write_denominators(cls):
    system, stats = _make(cls)
    t = 0
    for i in range(10):
        t = system.access(0, AccessKind.LOAD, ADDR + i * LINE, t).done
    for i in range(6):
        t = system.access(0, AccessKind.STORE, ADDR + i * LINE, t).done
    l1 = stats.aggregate_caches(".l1d")
    assert l1.reads == 10
    assert l1.writes == 6
    assert l1.accesses == 16


@pytest.mark.parametrize(
    "cls", (SharedL1System, SharedL2System, SharedMemorySystem)
)
def test_misses_never_exceed_accesses(cls):
    system, stats = _make(cls)
    t = 0
    for i in range(60):
        kind = AccessKind.STORE if i % 3 == 0 else AccessKind.LOAD
        t = system.access(i % 4, kind, ADDR + (i % 13) * LINE, t).done
    for cache in stats.caches.values():
        assert cache.misses <= cache.accesses
        assert cache.miss_rate <= 1.0


def test_shared_l1_writeback_counted_once_per_dirty_eviction():
    system, stats = _make(SharedL1System)
    system.config.shared_l1_optimistic = True
    # Dirty a line, then evict it with conflicting fills.
    system.access(0, AccessKind.STORE_COND, ADDR, 0)
    way = system.l1d.n_sets * LINE
    t = 1000
    for k in range(1, system.l1d.assoc + 1):
        t = system.access(0, AccessKind.LOAD, ADDR + k * way, t).done
    assert stats.cache("shared.l1d").writebacks == 1


def test_shared_l2_write_through_counts():
    system, stats = _make(SharedL2System)
    t = 0
    for i in range(5):
        t = system.access(0, AccessKind.STORE, ADDR + i * LINE, t).done
    l1 = stats.cache("cpu0.l1d")
    assert l1.write_throughs == 5
    # Every drain reached the shared L2 as a write access.
    assert stats.cache("shared.l2").writes == 5


def test_shared_mem_l2_writeback_on_dirty_eviction():
    system, stats = _make(SharedMemorySystem)
    system.access(0, AccessKind.STORE_COND, ADDR, 0)
    # Evict through the private L2 with conflicting fills.
    l2 = system.l2[0]
    way = l2.n_sets * LINE
    t = 1000
    for k in range(1, l2.assoc + 1):
        t = system.access(0, AccessKind.LOAD, ADDR + k * way, t).done
    assert stats.cache("cpu0.l2").writebacks >= 1
    assert system.bus.writebacks >= 1


def test_l2_evictions_counted():
    system, stats = _make(SharedL2System)
    l2_lines = system.l2.size // LINE
    t = 0
    for i in range(l2_lines + 8):
        t = system.access(0, AccessKind.LOAD, ADDR + i * LINE, t).done
    assert stats.cache("shared.l2").evictions >= 8


def test_update_policy_counts_updates_not_invalidations():
    system, stats = _make(SharedL2System, l1_coherence="update")
    system.access(1, AccessKind.LOAD, ADDR, 0)
    system.access(0, AccessKind.STORE, ADDR, 500)
    assert stats.cache("cpu1.l1d").updates_received == 1
    assert stats.cache("cpu1.l1d").invalidations_received == 0


def test_ifetch_misses_tracked_per_cpu():
    for cls in (SharedL1System, SharedL2System, SharedMemorySystem):
        system, stats = _make(cls)
        system.access(2, AccessKind.IFETCH, 0x0040_0000, 0)
        assert stats.cache("cpu2.l1i").misses == 1
        assert stats.cache("cpu0.l1i").misses == 0
