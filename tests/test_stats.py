"""Tests for the statistics containers."""

from repro.sim.stats import (
    CacheStats,
    CycleBreakdown,
    MxsStats,
    StallReason,
    SystemStats,
)


def test_cache_stats_miss_rates():
    stats = CacheStats(name="x")
    stats.reads = 80
    stats.writes = 20
    stats.read_misses_repl = 8
    stats.write_misses_inval = 2
    assert stats.accesses == 100
    assert stats.misses == 10
    assert stats.miss_rate == 0.10
    assert stats.miss_rate_repl == 0.08
    assert stats.miss_rate_inval == 0.02


def test_cache_stats_empty_rates_are_zero():
    stats = CacheStats()
    assert stats.miss_rate == 0.0
    assert stats.miss_rate_repl == 0.0
    assert stats.miss_rate_inval == 0.0


def test_cache_stats_merge():
    a = CacheStats(name="a", reads=10, read_misses_repl=1)
    b = CacheStats(name="b", reads=30, read_misses_repl=3, writebacks=2)
    merged = a.merged_with(b)
    assert merged.reads == 40
    assert merged.read_misses_repl == 4
    assert merged.writebacks == 2
    # originals untouched
    assert a.reads == 10


def test_breakdown_total_and_add():
    breakdown = CycleBreakdown()
    breakdown.add(StallReason.BUSY, 10)
    breakdown.add(StallReason.ISTALL, 5)
    breakdown.add(StallReason.L2, 3)
    breakdown.add(StallReason.MEM, 2)
    assert breakdown.total == 20
    assert breakdown.memory_stall == 10
    assert breakdown.as_dict()["busy"] == 10


def test_breakdown_merge():
    a = CycleBreakdown(busy=5, l2=1)
    b = CycleBreakdown(busy=7, mem=2)
    merged = a.merged_with(b)
    assert merged.busy == 12
    assert merged.l2 == 1
    assert merged.mem == 2


def test_mxs_ipc():
    mxs = MxsStats(cycles=100, graduated=150)
    assert mxs.ipc == 1.5


def test_mxs_ipc_loss_sums_to_headroom():
    mxs = MxsStats(
        cycles=100,
        graduated=100,
        slots_lost_icache=30,
        slots_lost_dcache=50,
        slots_lost_pipeline=20,
    )
    losses = mxs.ipc_loss(width=2)
    assert abs(sum(losses.values()) - (2 - mxs.ipc)) < 1e-9
    # dcache lost the most slots, so it gets the biggest share
    assert losses["dcache"] > losses["icache"] > losses["pipeline"]


def test_mxs_ipc_loss_no_slots_lost():
    mxs = MxsStats(cycles=10, graduated=10)
    losses = mxs.ipc_loss(width=2)
    assert losses["icache"] == 0.0
    assert losses["dcache"] == 0.0
    assert abs(losses["pipeline"] - 1.0) < 1e-9


def test_system_stats_cache_registry():
    stats = SystemStats.for_cpus(4)
    first = stats.cache("cpu0.l1d")
    second = stats.cache("cpu0.l1d")
    assert first is second
    assert len(stats.breakdowns) == 4
    assert len(stats.mxs) == 4


def test_system_stats_aggregate_caches_by_suffix():
    stats = SystemStats.for_cpus(2)
    stats.cache("cpu0.l1d").reads = 10
    stats.cache("cpu1.l1d").reads = 20
    stats.cache("cpu0.l1i").reads = 99
    merged = stats.aggregate_caches(".l1d")
    assert merged.reads == 30


def test_system_stats_aggregate_breakdown():
    stats = SystemStats.for_cpus(2)
    stats.breakdowns[0].busy = 10
    stats.breakdowns[1].busy = 5
    stats.breakdowns[1].mem = 3
    merged = stats.aggregate_breakdown()
    assert merged.busy == 15
    assert merged.mem == 3


def test_system_ipc():
    stats = SystemStats.for_cpus(1)
    stats.cycles = 100
    stats.instructions = 250
    assert stats.ipc == 2.5
