"""Tests for the parameter-sweep API."""

import pytest

from conftest import LoopWorkload

from repro.core.sweeps import (
    SweepResult,
    speedup_table,
    sweep_cpu_count,
    sweep_mem_field,
)
from repro.errors import ConfigError


def _loop_factory(n_cpus, functional, scale):
    return LoopWorkload(n_cpus, functional, iterations=4, array_words=64)


def test_sweep_mem_field_covers_values_and_archs():
    sweep = sweep_mem_field(
        _loop_factory, "l2_assoc", (1, 4), scale="test",
    )
    assert sweep.values == [1, 4]
    for value in (1, 4):
        assert set(sweep.runs[value]) == {
            "shared-l1", "shared-l2", "shared-mem"
        }
        assert sweep.cycles(value, "shared-mem") > 0


def test_sweep_l1_size_reduces_misses():
    sweep = sweep_mem_field(
        _loop_factory, "l1d_size", (128, 4096), scale="test",
        archs=("shared-mem",),
    )
    small = sweep.runs[128]["shared-mem"].stats.aggregate_caches(".l1d")
    large = sweep.runs[4096]["shared-mem"].stats.aggregate_caches(".l1d")
    assert large.misses <= small.misses


def test_sweep_table_renders():
    sweep = sweep_mem_field(_loop_factory, "l2_assoc", (1, 2), scale="test")
    table = sweep.table()
    assert "l2_assoc" in table
    assert "shared-l1" in table


def test_sweep_series_and_normalized():
    sweep = sweep_mem_field(_loop_factory, "l2_assoc", (1, 2), scale="test")
    series = sweep.series("shared-l2")
    assert len(series) == 2
    times = sweep.normalized(1)
    assert times["shared-mem"] == 1.0


def test_sweep_to_dict():
    sweep = sweep_mem_field(
        _loop_factory, "l2_assoc", (1,), scale="test",
        archs=("shared-l1",),
    )
    data = sweep.to_dict()
    assert data["field"] == "l2_assoc"
    assert "shared-l1" in data["cycles"]["1"]


def test_sweep_base_overrides_compose():
    sweep = sweep_mem_field(
        _loop_factory, "l2_assoc", (1,), scale="test",
        archs=("shared-l1",),
        base_overrides={"l1d_size": 256},
    )
    assert sweep.cycles(1, "shared-l1") > 0


def test_sweep_rejects_empty_values():
    with pytest.raises(ConfigError):
        sweep_mem_field(_loop_factory, "l2_assoc", (), scale="test")
    with pytest.raises(ConfigError):
        sweep_cpu_count(_loop_factory, counts=())


def test_cpu_count_sweep_and_speedups():
    results = sweep_cpu_count(
        _loop_factory, counts=(1, 2), scale="test",
        archs=("shared-l2",),
    )
    speedups = speedup_table(results)
    assert speedups["shared-l2"][1] == 1.0
    # Independent per-CPU loops: two CPUs are no slower than one.
    assert speedups["shared-l2"][2] > 0.8


def test_unknown_field_raises():
    with pytest.raises(ConfigError):
        sweep_mem_field(_loop_factory, "warp_drive", (1,), scale="test")


class _SweepResultUnit:
    pass


def test_sweep_result_table_empty_is_safe():
    empty = SweepResult(field="x")
    assert "x" in empty.table()
