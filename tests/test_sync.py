"""Tests for the synchronization primitives under full simulation."""

import pytest

from conftest import build_system

from repro.errors import WorkloadError
from repro.mem.functional import FunctionalMemory
from repro.sync.barrier import Barrier
from repro.sync.lock import SpinLock
from repro.sync.primitives import AtomicCounter
from repro.sync.taskqueue import TaskQueue
from repro.workloads.base import Workload


class LockWorkload(Workload):
    """All CPUs increment a shared counter under a lock."""

    name = "test-lock"

    def __init__(self, n_cpus, functional, increments=10):
        super().__init__(n_cpus, functional)
        self.increments = increments
        self.region = self.code.region("lock.body", 16)
        self.lock = SpinLock("test.lock", self.code, self.data)
        self.counter_addr = self.data.alloc_line()
        self.final_values = {}

    def program(self, cpu_id):
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        for _ in range(self.increments):
            yield from self.lock.acquire(ctx)
            em.jump(0)
            value = yield em.load(self.counter_addr, want_value=True)
            yield em.ialu(src1=1)
            yield em.store(self.counter_addr, value + 1)
            yield from self.lock.release(ctx)
        self.final_values[cpu_id] = None

    def validate(self):
        total = self.functional.read(self.counter_addr, 1 << 60)
        expected = self.n_cpus * self.increments
        if total != expected:
            raise WorkloadError(
                f"lost updates: counter is {total}, expected {expected}"
            )


class BarrierPhaseWorkload(Workload):
    """Phases separated by barriers; records per-phase arrival order."""

    name = "test-barrier"

    def __init__(self, n_cpus, functional, phases=6):
        super().__init__(n_cpus, functional)
        self.phases = phases
        self.region = self.code.region("phase.body", 16)
        self.barrier = Barrier("test.bar", self.code, self.data, n_cpus)
        self.trace = []

    def program(self, cpu_id):
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        for phase in range(self.phases):
            # Unequal work per CPU per phase.
            for _ in range(1 + (cpu_id + phase) % 4 * 5):
                yield em.ialu()
            self.trace.append((phase, cpu_id, "arrive"))
            yield from self.barrier.wait(ctx)
            self.trace.append((phase, cpu_id, "leave"))

    def validate(self):
        # No CPU may leave phase p before every CPU arrived at phase p.
        arrivals = {}
        for phase, cpu, what in self.trace:
            arrivals.setdefault(phase, set())
            if what == "arrive":
                arrivals[phase].add(cpu)
            else:
                if len(arrivals[phase]) != self.n_cpus:
                    raise WorkloadError(
                        f"cpu {cpu} left phase {phase} early"
                    )


class CounterWorkload(Workload):
    """Atomic fetch-and-increment: all values claimed exactly once."""

    name = "test-counter"

    def __init__(self, n_cpus, functional, claims=12):
        super().__init__(n_cpus, functional)
        self.claims = claims
        self.counter = AtomicCounter("test.fai", self.code, self.data)
        self.claimed = []

    def program(self, cpu_id):
        ctx = self.context(cpu_id)
        for _ in range(self.claims):
            value = yield from self.counter.fetch_increment(ctx)
            self.claimed.append(value)

    def validate(self):
        expected = self.n_cpus * self.claims
        if sorted(self.claimed) != list(range(expected)):
            raise WorkloadError(f"duplicate or lost claims: {self.claimed}")


class QueueWorkload(Workload):
    """Task queue with stealing: every task executed exactly once."""

    name = "test-queue"

    def __init__(self, n_cpus, functional, tasks=20, skew=True):
        super().__init__(n_cpus, functional)
        self.region = self.code.region("task.body", 16)
        # Skewed ranges force stealing: queue 0 gets most tasks.
        if skew:
            ranges = [(0, tasks - n_cpus + 1)]
            for cpu in range(1, n_cpus):
                ranges.append((tasks - n_cpus + cpu, tasks - n_cpus + cpu + 1))
        else:
            per = tasks // n_cpus
            ranges = [(i * per, (i + 1) * per) for i in range(n_cpus)]
        self.queue = TaskQueue("test.q", self.code, self.data, ranges)
        self.queue.initialize(functional)
        self.tasks = tasks
        self.executed = []

    def program(self, cpu_id):
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        while True:
            popped = yield from self.queue.pop_any(ctx)
            if popped is None:
                return
            _q, task = popped
            self.executed.append(task)
            for _ in range(5):
                yield em.ialu()

    def validate(self):
        if sorted(self.executed) != list(range(self.tasks)):
            raise WorkloadError(f"task set wrong: {sorted(self.executed)}")


ARCHS = ("shared-l1", "shared-l2", "shared-mem")


@pytest.mark.parametrize("arch", ARCHS)
def test_lock_provides_mutual_exclusion(arch):
    system = build_system(arch, LockWorkload, increments=8)
    system.run()  # validate() raises on lost updates
    assert not system.truncated


@pytest.mark.parametrize("arch", ARCHS)
def test_barrier_separates_phases(arch):
    system = build_system(arch, BarrierPhaseWorkload, phases=5)
    system.run()
    assert not system.truncated


@pytest.mark.parametrize("arch", ARCHS)
def test_atomic_counter_unique_claims(arch):
    system = build_system(arch, CounterWorkload, claims=8)
    system.run()
    assert not system.truncated


@pytest.mark.parametrize("arch", ARCHS)
def test_task_queue_executes_all_tasks_once(arch):
    system = build_system(arch, QueueWorkload, tasks=16)
    system.run()
    assert not system.truncated


def test_task_queue_steals_under_skew():
    system = build_system("shared-mem", QueueWorkload, tasks=24, skew=True)
    workload = system.workload
    system.run()
    assert workload.queue.steals > 0


def test_lock_contention_is_recorded():
    system = build_system("shared-mem", LockWorkload, increments=12)
    workload = system.workload
    system.run()
    assert workload.lock.acquires == 4 * 12
    assert workload.lock.contended_retries > 0


def test_barrier_under_mxs():
    system = build_system(
        "shared-l2", BarrierPhaseWorkload, cpu_model="mxs", phases=3
    )
    system.run()
    assert not system.truncated


def test_lock_under_mxs():
    system = build_system(
        "shared-l1", LockWorkload, cpu_model="mxs", increments=5
    )
    system.run()
    assert not system.truncated


def test_sync_report_collects_primitives():
    system = build_system("shared-mem", LockWorkload, increments=4)
    system.run()
    report = system.workload.sync_report()
    assert "test.lock" in report
    assert report["test.lock"]["kind"] == "lock"
    assert report["test.lock"]["acquires"] == 16


def test_sync_report_reaches_nested_primitives():
    """The barrier's internal lock and kernel locks (one level down)
    are found too."""
    from repro.mem.functional import FunctionalMemory
    from repro.workloads import WORKLOADS

    workload = WORKLOADS["multiprog"](4, FunctionalMemory(), "test")
    report = workload.sync_report()
    assert "kernel.bcache" in report
    assert "kernel.runq" in report


def test_sync_report_on_queue_workload():
    system = build_system("shared-l1", QueueWorkload, tasks=16)
    system.run()
    report = system.workload.sync_report()
    assert report["test.q"]["pops"] == 16
