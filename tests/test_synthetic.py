"""Tests for the parameterizable synthetic workload."""

import pytest

from repro.core.configs import test_config as make_test_config
from repro.core.experiment import run_architecture_comparison
from repro.core.report import normalized_times
from repro.core.system import System
from repro.errors import WorkloadError
from repro.mem.functional import FunctionalMemory
from repro.workloads.synthetic import SyntheticWorkload, make, make_with


def run(arch, **kwargs):
    functional = FunctionalMemory()
    workload = make(4, functional, "test", **kwargs)
    system = System(
        arch, workload, mem_config=make_test_config(), max_cycles=2_000_000
    )
    return system.run(), system


def test_runs_to_completion_everywhere():
    for arch in ("shared-l1", "shared-l2", "shared-mem"):
        stats, system = run(arch)
        assert not system.truncated
        assert stats.instructions > 0


def test_parameter_validation():
    functional = FunctionalMemory()
    with pytest.raises(WorkloadError):
        SyntheticWorkload(4, functional, sharing=1.5)
    with pytest.raises(WorkloadError):
        SyntheticWorkload(4, functional, store_ratio=-0.1)
    with pytest.raises(WorkloadError):
        SyntheticWorkload(4, functional, grain=0)
    with pytest.raises(WorkloadError):
        make(4, functional, "galactic")


def test_sharing_axis_controls_coherence_traffic():
    """Data sharing drives coherence invalidations delivered to the
    private caches; at sharing=0 only the barriers communicate."""
    kwargs = dict(shared_bytes=1024, private_bytes=256,
                  store_ratio=0.7, grain=96, phases=30)
    none_stats, _ = run("shared-mem", sharing=0.0, **kwargs)
    lots_stats, _ = run("shared-mem", sharing=0.6, **kwargs)

    def received(stats):
        return sum(
            stats.cache(f"cpu{i}.l1d").invalidations_received
            for i in range(4)
        )

    assert received(lots_stats) > 1.5 * received(none_stats)


def test_sharing_axis_moves_the_architecture_gap():
    """More sharing widens the shared-L1 advantage over the bus — the
    paper's three classes as a continuum."""

    def gap(sharing):
        results = run_architecture_comparison(
            make_with(sharing), scale="test", max_cycles=2_000_000
        )
        return normalized_times(results)["shared-l1"]

    independent = gap(0.0)
    communicating = gap(0.7)
    assert communicating < independent


def test_store_ratio_moves_write_traffic():
    low_stats, _ = run("shared-l2", store_ratio=0.05)
    high_stats, _ = run("shared-l2", store_ratio=0.6)
    low_writes = low_stats.aggregate_caches(".l1d").writes
    high_writes = high_stats.aggregate_caches(".l1d").writes
    assert high_writes > 2 * low_writes


def test_grain_controls_instructions_per_barrier():
    _, small_system = run("shared-l1", grain=16)
    _, big_system = run("shared-l1", grain=128)
    small = small_system.workload
    big = big_system.workload
    assert big.grain > small.grain
    # Same phase count => more instructions with the bigger grain.
    assert (
        big_system.stats.instructions > small_system.stats.instructions
    )


def test_identical_decision_streams_per_seed():
    """The pre-drawn randomness is identical across instances, so every
    architecture replays the same reference decisions (spin counts at
    barriers still differ by architecture, as they should)."""
    import numpy as np

    first = make(4, FunctionalMemory(), "test")
    second = make(4, FunctionalMemory(), "test")
    assert np.array_equal(first.is_shared, second.is_shared)
    assert np.array_equal(first.is_store, second.is_store)
    assert np.array_equal(first.private_index, second.private_index)
    assert np.array_equal(first.shared_index, second.shared_index)


def test_make_with_builds_factories():
    factory = make_with(0.3, grain=24, store_ratio=0.1)
    workload = factory(4, FunctionalMemory(), "test")
    assert workload.sharing == 0.3
    assert workload.grain == 24
    assert workload.store_ratio == 0.1
