"""Tests for system assembly, the run loop, and the experiment harness."""

import pytest

from conftest import LoopWorkload, SharingWorkload, build_system

from repro.core.configs import (
    ARCHITECTURES,
    CpuParams,
    bench_config,
    build_memory,
    config_for_scale,
    paper_config,
)
from repro.core.configs import test_config as make_test_config
from repro.core.experiment import run_architecture_comparison, run_one
from repro.core.report import (
    format_breakdown_table,
    format_ipc_table,
    format_miss_rate_table,
    normalized_times,
    speedups,
)
from repro.core.system import System
from repro.errors import ConfigError, DeadlockError, ReproError
from repro.mem.functional import FunctionalMemory
from repro.sim.stats import SystemStats
from repro.workloads.base import Workload


# ----------------------------------------------------------------------
# configs


def test_paper_config_matches_table2():
    config = paper_config()
    assert config.l1_latency == 1
    assert config.shared_l1_latency == 3
    assert config.l2_latency == 10
    assert config.l2_occupancy == 2
    assert config.shared_l2_latency == 14
    assert config.shared_l2_occupancy == 4
    assert config.mem_latency == 50
    assert config.mem_occupancy == 6
    assert config.bus.c2c_latency > 50
    assert config.bus.c2c_occupancy > 6


def test_paper_config_sizes():
    config = paper_config()
    assert config.l1i_size == 16 * 1024
    assert config.l1d_size == 16 * 1024
    assert config.shared_l1_size == 64 * 1024
    assert config.l2_size == 2 * 1024 * 1024


def test_scaled_configs_shrink_sizes_not_latencies():
    paper = paper_config()
    bench = bench_config()
    assert bench.l1d_size == paper.l1d_size // 8
    assert bench.l2_size == paper.l2_size // 8
    assert bench.l2_latency == paper.l2_latency
    assert bench.mem_latency == paper.mem_latency


def test_config_for_scale_names():
    assert config_for_scale("paper").l1d_size == 16 * 1024
    assert config_for_scale("bench").l1d_size == 2 * 1024
    assert config_for_scale("test").l1d_size == 512
    with pytest.raises(ConfigError):
        config_for_scale("nope")


def test_build_memory_by_name():
    stats = SystemStats.for_cpus(4)
    for arch in ARCHITECTURES:
        memory = build_memory(arch, make_test_config(), stats)
        assert memory.name == arch
    with pytest.raises(ConfigError):
        build_memory("shared-l9", make_test_config(), stats)


def test_cpu_params_validation():
    with pytest.raises(ConfigError):
        CpuParams(btb_entries=1000)  # not a power of two
    with pytest.raises(ConfigError):
        CpuParams(window=0)


# ----------------------------------------------------------------------
# system


def test_system_sets_mipsy_optimism():
    system = build_system("shared-l1", LoopWorkload, cpu_model="mipsy")
    assert system.config.shared_l1_optimistic
    system = build_system("shared-l1", LoopWorkload, cpu_model="mxs")
    assert not system.config.shared_l1_optimistic


def test_system_rejects_unknown_cpu_model():
    functional = FunctionalMemory()
    workload = LoopWorkload(4, functional)
    with pytest.raises(ConfigError):
        System("shared-mem", workload, cpu_model="embra")


def test_system_rejects_cpu_count_mismatch():
    functional = FunctionalMemory()
    workload = LoopWorkload(2, functional)
    with pytest.raises(ConfigError):
        System("shared-mem", workload, mem_config=make_test_config(4))


def test_max_cycles_truncates():
    system = build_system(
        "shared-mem", LoopWorkload, iterations=10_000, max_cycles=500
    )
    stats = system.run()
    assert system.truncated
    # In-flight accesses may finish a little past the cap.
    assert stats.cycles <= 500 + 200


def test_max_cycles_inside_fast_forward_window_truncates():
    """When every CPU is stalled on a long miss, the run loop
    fast-forwards past ``max_cycles`` in one jump. The truncation check
    runs at the top of the loop, so the run must stop with
    ``truncated`` set — and the jump must never be mistaken for a
    deadlock, even with a horizon shorter than the stall."""
    functional = FunctionalMemory()
    workload = LoopWorkload(1, functional, iterations=10_000)
    system = System(
        "shared-mem",
        workload,
        mem_config=make_test_config(1),
        # The first data load misses L1, L2 and goes to memory — a
        # multi-ten-cycle stall. Cap the run inside that window.
        max_cycles=5,
        deadlock_horizon=1,
    )
    stats = system.run()
    assert system.truncated
    assert stats.cycles >= 5


def test_stats_cycles_is_makespan():
    system = build_system("shared-mem", LoopWorkload, iterations=5)
    stats = system.run()
    assert stats.cycles >= max(
        breakdown.total for breakdown in stats.breakdowns
    )


def test_run_is_deterministic():
    def run_once():
        system = build_system("shared-l2", SharingWorkload, rounds=3)
        stats = system.run()
        return stats.cycles, stats.instructions

    assert run_once() == run_once()


class _StuckWorkload(Workload):
    """One CPU waits forever on a flag nobody sets (true deadlock —
    stalls without retiring instructions are caught by the watchdog
    via max_cycles; spin livelocks retire instructions forever)."""

    name = "stuck"

    def __init__(self, n_cpus, functional):
        super().__init__(n_cpus, functional)
        self.region = self.code.region("stuck", 8)
        self.flag = self.data.alloc_line()

    def program(self, cpu_id):
        ctx = self.context(cpu_id)
        em = ctx.emitter(self.region)
        while True:
            em.jump(0)
            top = em.label()
            value = yield em.load(self.flag, want_value=True)
            if value:
                return
            yield em.branch(True, to=top)


def test_spin_livelock_hits_max_cycles():
    system = build_system("shared-mem", _StuckWorkload, max_cycles=20_000)
    system.run()
    assert system.truncated


def test_deadlock_error_carries_cycle():
    error = DeadlockError(123, detail="x")
    assert error.cycle == 123
    assert "123" in str(error)


# ----------------------------------------------------------------------
# experiment harness + report


def _loop_factory(n_cpus, functional, scale):
    return LoopWorkload(n_cpus, functional, iterations=4)


def test_run_one_returns_result():
    result = run_one("shared-l2", _loop_factory, scale="test")
    assert result.arch == "shared-l2"
    assert result.cycles > 0
    assert result.wall_seconds >= 0


def test_comparison_covers_all_architectures():
    results = run_architecture_comparison(_loop_factory, scale="test")
    assert set(results) == set(ARCHITECTURES)


def test_comparison_applies_overrides():
    results = run_architecture_comparison(
        _loop_factory, scale="test", mem_config_overrides={"l2_assoc": 4}
    )
    for result in results.values():
        assert result.cycles > 0
    with pytest.raises(ConfigError):
        run_architecture_comparison(
            _loop_factory, scale="test", mem_config_overrides={"zzz": 1}
        )


def test_normalized_times_and_speedups():
    results = run_architecture_comparison(_loop_factory, scale="test")
    times = normalized_times(results)
    assert times["shared-mem"] == 1.0
    ratios = speedups(results)
    for arch in results:
        assert ratios[arch] == pytest.approx(1.0 / times[arch])


def test_normalized_times_requires_baseline():
    results = run_architecture_comparison(
        _loop_factory, scale="test", archs=("shared-l1",)
    )
    with pytest.raises(ReproError):
        normalized_times(results)


def test_report_tables_render():
    results = run_architecture_comparison(_loop_factory, scale="test")
    breakdown = format_breakdown_table(results, title="t")
    misses = format_miss_rate_table(results, title="m")
    assert "shared-l1" in breakdown and "total" in breakdown
    assert "L1R%" in misses
    ipc = format_ipc_table(results)
    assert "IPC" in ipc


def test_ipc_table_with_mxs_results():
    results = run_architecture_comparison(
        _loop_factory, cpu_model="mxs", scale="test"
    )
    table = format_ipc_table(results)
    assert "n/a" not in table


def test_non_default_cpu_counts_run_everywhere():
    """2- and 8-CPU machines build and run on every architecture
    (crossbar ports and shared-L1 capacity scale with the CPU count)."""
    for n_cpus in (1, 2, 8):
        for arch in ARCHITECTURES:
            functional = FunctionalMemory()
            workload = LoopWorkload(n_cpus, functional, iterations=3)
            system = System(
                arch,
                workload,
                mem_config=make_test_config(n_cpus),
                max_cycles=500_000,
            )
            stats = system.run()
            assert not system.truncated, (arch, n_cpus)
            assert stats.instructions > 0


def test_shared_l1_capacity_scales_with_cpus():
    config = make_test_config(8)
    assert config.shared_l1_size == 8 * config.l1d_size


def test_result_to_dict_round_trips_through_json():
    import json

    result = run_one("shared-l2", _loop_factory, scale="test")
    data = json.loads(result.to_json())
    assert data["arch"] == "shared-l2"
    assert data["cycles"] == result.cycles
    assert data["breakdown"]["busy"] == result.stats.aggregate_breakdown().busy
    assert 0 <= data["l1d"]["miss_rate_repl"] <= 1


def test_result_to_dict_includes_mxs_fields():
    result = run_one("shared-l2", _loop_factory, cpu_model="mxs",
                     scale="test")
    data = result.to_dict()
    assert "per_cpu_ipc" in data
    assert data["mxs"], "per-CPU MXS summaries expected"
    assert "ipc_loss" in data["mxs"][0]
