"""The composable topology engine: specs, registries, new systems.

Covers the spec language (validation, serialization), the preset and
builder registries, the two non-paper topologies end-to-end (16-core
cluster over a multi-stage crossbar; 3-level private-L1/private-L2/
shared-L3 hierarchy), their fast-lane invariance, the scaling figure,
and the N-CPU workload sharding that makes any core count legal.
"""

from __future__ import annotations

import pytest

from repro.core.configs import config_for_scale
from repro.core.system import System
from repro.errors import ConfigError
from repro.mem.cluster import ClusterSharedL1System
from repro.mem.crossbar import Crossbar, MultistageCrossbar
from repro.mem.functional import FunctionalMemory
from repro.mem.shared_l1 import SharedL1System
from repro.mem.shared_l2 import SharedL2System
from repro.mem.shared_l3 import SharedL3System
from repro.mem.shared_mem import SharedMemorySystem
from repro.mem.topology import (
    PAPER_TOPOLOGIES,
    CacheLevel,
    Interconnect,
    Topology,
    build_topology,
    get_preset,
    resolve_topology,
    topology_names,
)
from repro.sim.stats import SystemStats
from repro.workloads import WORKLOADS
from repro.workloads.base import shard

CAP = 3_000_000


def _level(**overrides) -> CacheLevel:
    base = dict(name="l1d", size=4096, assoc=2, latency=1)
    base.update(overrides)
    return CacheLevel(**base)


def _run(arch, n_cpus, cpu_model="mipsy", workload="fft", fast=True):
    config = config_for_scale("test", n_cpus)
    if not fast:
        config = config.with_overrides(l1_fast_path=False)
    w = WORKLOADS[workload](n_cpus, FunctionalMemory(), "test")
    system = System(
        arch, w, cpu_model=cpu_model, mem_config=config, max_cycles=CAP
    )
    stats = system.run()
    assert not system.truncated
    return stats


# ---------------------------------------------------------------------------
# spec validation and serialization


def test_cache_level_validation_errors():
    with pytest.raises(ConfigError):
        _level(size=0).validate(4)
    with pytest.raises(ConfigError):
        _level(assoc=0).validate(4)
    with pytest.raises(ConfigError):
        _level(latency=0).validate(4)
    with pytest.raises(ConfigError):
        _level(banks=3).validate(4)
    with pytest.raises(ConfigError):
        _level(sharing=3).validate(4)  # does not divide 4
    with pytest.raises(ConfigError):
        _level(write_policy="writearound").validate(4)
    _level(banks=4, sharing=2).validate(4)


def test_cache_level_arrays():
    assert _level(sharing=1).arrays(8) == 8
    assert _level(sharing=2).arrays(8) == 4
    assert _level(sharing=0).arrays(8) == 1


def test_interconnect_validation_and_latency():
    ic = Interconnect(kind="multistage", stage_latencies=(2, 2))
    ic.validate()
    assert ic.latency == 4
    with pytest.raises(ConfigError):
        Interconnect(stage_latencies=(0,)).validate()
    with pytest.raises(ConfigError):
        Interconnect(occupancy=0).validate()


def test_topology_validation_errors():
    with pytest.raises(ConfigError):
        Topology(name="t", kind="k", n_cpus=0, levels=(_level(),)).validate()
    with pytest.raises(ConfigError):
        Topology(name="t", kind="k", n_cpus=4, levels=()).validate()


def test_topology_roundtrip_and_level_lookup():
    config = config_for_scale("test", 16)
    topology = resolve_topology("cluster-l1", config)
    clone = Topology.from_dict(topology.to_dict())
    assert clone.to_dict() == topology.to_dict()
    assert clone.level("l1d").sharing == 0
    with pytest.raises(ConfigError):
        clone.level("l9")


# ---------------------------------------------------------------------------
# registries


def test_topology_names_paper_first():
    names = topology_names()
    assert names[:3] == PAPER_TOPOLOGIES
    assert "cluster-l1" in names and "shared-l3" in names


def test_get_preset_unknown():
    with pytest.raises(ConfigError):
        get_preset("shared-l9")


def test_preset_metadata():
    assert get_preset("cluster-l1").default_cpus == 16
    assert get_preset("shared-l1").default_cpus == 4
    for name in topology_names():
        assert get_preset(name).description


def test_resolve_topology_rejects_cpu_mismatch():
    config = config_for_scale("test", 4)
    sixteen = resolve_topology("cluster-l1", config_for_scale("test", 16))
    with pytest.raises(ConfigError):
        resolve_topology(sixteen, config)


def test_build_topology_unknown_kind():
    config = config_for_scale("test", 4)
    bogus = Topology(
        name="bogus", kind="no-such-kind", n_cpus=4, levels=(_level(),)
    )
    with pytest.raises(ConfigError):
        build_topology(bogus, config, SystemStats.for_cpus(4))


@pytest.mark.parametrize(
    "name,cls",
    [
        ("shared-l1", SharedL1System),
        ("shared-l2", SharedL2System),
        ("shared-mem", SharedMemorySystem),
        ("cluster-l1", ClusterSharedL1System),
        ("shared-l3", SharedL3System),
    ],
)
def test_builders_produce_expected_system(name, cls):
    n = get_preset(name).default_cpus
    config = config_for_scale("test", n)
    topology = resolve_topology(name, config)
    memory = build_topology(topology, config, SystemStats.for_cpus(n))
    assert isinstance(memory, cls)


# ---------------------------------------------------------------------------
# the two new topologies, end to end


def test_cluster_uses_multistage_crossbar():
    config = config_for_scale("test", 16)
    memory = build_topology(
        resolve_topology("cluster-l1", config),
        config,
        SystemStats.for_cpus(16),
    )
    assert isinstance(memory.crossbar, MultistageCrossbar)
    assert len(memory.crossbar.switches) == 1  # two stages, one column
    assert memory.l1d.size == config.l1d_size * 16


def test_shared_l3_has_three_levels():
    config = config_for_scale("test", 4)
    memory = build_topology(
        resolve_topology("shared-l3", config),
        config,
        SystemStats.for_cpus(4),
    )
    assert isinstance(memory.crossbar, Crossbar)
    assert len(memory.l1d) == 4 and len(memory.l2) == 4
    assert memory.l3.size == config.l3_size


@pytest.mark.parametrize("cpu_model", ("mipsy", "mxs"))
@pytest.mark.parametrize(
    "arch,n_cpus", [("cluster-l1", 16), ("shared-l3", 4)]
)
def test_new_topologies_run_and_are_deterministic(arch, n_cpus, cpu_model):
    first = _run(arch, n_cpus, cpu_model)
    second = _run(arch, n_cpus, cpu_model)
    assert first.cycles > 0 and first.instructions > 0
    assert first.to_dict() == second.to_dict()


@pytest.mark.parametrize("cpu_model", ("mipsy", "mxs"))
@pytest.mark.parametrize(
    "arch,n_cpus", [("cluster-l1", 16), ("shared-l3", 4)]
)
def test_new_topologies_fast_path_invisible(arch, n_cpus, cpu_model):
    fast = _run(arch, n_cpus, cpu_model, fast=True)
    slow = _run(arch, n_cpus, cpu_model, fast=False)
    assert fast.to_dict() == slow.to_dict()


def test_scaling_figure_through_runner(tmp_path):
    from repro.core.figures import render_scaling_svg
    from repro.core.sweeps import speedup_table, sweep_cpu_count

    table = sweep_cpu_count(
        "fft", counts=(2, 4), archs=("cluster-l1", "shared-l3")
    )
    speedups = speedup_table(table)
    assert set(speedups) == {"cluster-l1", "shared-l3"}
    out = tmp_path / "scaling.svg"
    svg = render_scaling_svg(table, "scaling", path=out)
    assert out.read_text() == svg
    assert svg.startswith("<svg") and "polyline" in svg
    assert "cluster-l1" in svg and "shared-l3" in svg


# ---------------------------------------------------------------------------
# N-CPU workload sharding (no more hard-wired four)


def test_shard_covers_everything_exactly_once():
    for n_items in (0, 1, 4, 7, 16, 33):
        for n_cpus in (1, 2, 3, 4, 8, 16):
            blocks = [shard(n_items, n_cpus, cpu) for cpu in range(n_cpus)]
            flat = [i for block in blocks for i in block]
            assert flat == list(range(n_items))
            sizes = [len(block) for block in blocks]
            assert max(sizes) - min(sizes) <= 1


def test_shard_matches_even_split():
    # When n_cpus divides n_items the split is the historical even one.
    assert list(shard(16, 4, 1)) == list(range(4, 8))
    assert list(shard(4, 4, 3)) == [3]


@pytest.mark.parametrize("n_cpus", (2, 8, 16))
@pytest.mark.parametrize("workload", ("fft", "ocean", "eqntott"))
def test_workloads_deterministic_at_any_cpu_count(workload, n_cpus):
    first = _run("shared-mem", n_cpus, workload=workload)
    second = _run("shared-mem", n_cpus, workload=workload)
    assert first.cycles > 0
    assert first.to_dict() == second.to_dict()
