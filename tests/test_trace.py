"""Tests for trace capture and replay."""

import pytest

from conftest import LoopWorkload, SharingWorkload, build_system

from repro.core.configs import test_config as make_test_config
from repro.core.system import System
from repro.errors import ReproError, WorkloadError
from repro.mem.functional import FunctionalMemory
from repro.mem.hierarchy import MemorySystem
from repro.mem.types import AccessKind, AccessResult, StallLevel
from repro.sim.stats import SystemStats
from repro.trace import (
    TraceRecord,
    TraceRecorder,
    TraceWorkload,
    read_trace,
    write_trace,
)
from repro.trace.recorder import record_run
from repro.trace.replay import replay_trace


# ----------------------------------------------------------------------
# format


def test_record_round_trips_through_text():
    record = TraceRecord(2, AccessKind.LOAD, 0x1000_0020, 0x400004)
    assert TraceRecord.from_line(record.to_line()) == record


def test_sc_round_trips_as_its_own_code():
    """Regression: store-conditionals used to collapse to plain stores
    on the way to disk, so a replayed sync-heavy stream issued cheaper
    references than the recorded run. They get their own code now."""
    record = TraceRecord(0, AccessKind.STORE_COND, 0x100, 0)
    line = record.to_line()
    assert line.split()[1] == "C"
    assert TraceRecord.from_line(line) == record


def test_malformed_lines_rejected():
    with pytest.raises(ReproError):
        TraceRecord.from_line("1 L deadbeef")
    with pytest.raises(ReproError):
        TraceRecord.from_line("1 X 10 0")


def test_write_and_read_trace(tmp_path):
    records = [
        TraceRecord(0, AccessKind.IFETCH, 0x400000, 0x400000),
        TraceRecord(0, AccessKind.LOAD, 0x1000, 0x400000),
        TraceRecord(1, AccessKind.STORE, 0x2000, 0x400010),
    ]
    path = tmp_path / "t.trace"
    assert write_trace(path, records) == 3
    assert list(read_trace(path)) == records


def test_read_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "t.trace"
    path.write_text("# header\n\n0 L 10 0\n")
    assert len(list(read_trace(path))) == 1


# ----------------------------------------------------------------------
# recorder


def test_recorder_is_transparent():
    plain = build_system("shared-l2", LoopWorkload, iterations=4)
    plain_stats = plain.run()

    recorded = build_system("shared-l2", LoopWorkload, iterations=4)
    recorder = record_run(recorded)
    assert recorded.stats.cycles == plain_stats.cycles
    assert recorded.stats.instructions == plain_stats.instructions
    assert len(recorder) > 0


def test_recorder_captures_all_kinds():
    system = build_system("shared-mem", LoopWorkload, iterations=3)
    recorder = record_run(system)
    kinds = {record.kind for record in recorder.records}
    assert AccessKind.LOAD in kinds
    assert AccessKind.STORE in kinds
    assert AccessKind.IFETCH in kinds


def test_recorder_limit():
    system = build_system("shared-l1", LoopWorkload, iterations=5)
    recorder = TraceRecorder(system.memory).limit(10)
    system.memory = recorder
    for cpu in system.cpus:
        cpu.memory = recorder
    system.run()
    assert len(recorder) == 10


def test_recorder_save_and_reload(tmp_path):
    system = build_system("shared-l1", LoopWorkload, iterations=2)
    recorder = record_run(system, tmp_path / "run.trace")
    reloaded = list(read_trace(tmp_path / "run.trace"))
    assert len(reloaded) == len(recorder)


# ----------------------------------------------------------------------
# replay


def test_replay_reissues_the_stream(tmp_path):
    source = build_system("shared-l2", LoopWorkload, iterations=3)
    recorder = record_run(source, tmp_path / "run.trace")
    data_refs = sum(
        1 for r in recorder.records if r.kind != AccessKind.IFETCH
    )

    replayed = replay_trace(
        tmp_path / "run.trace", "shared-l2", mem_config=make_test_config()
    )
    assert replayed.workload.replayed == data_refs
    assert not replayed.truncated


def test_replay_on_a_different_architecture(tmp_path):
    source = build_system("shared-l2", LoopWorkload, iterations=3)
    record_run(source, tmp_path / "run.trace")
    replayed = replay_trace(
        tmp_path / "run.trace", "shared-mem", mem_config=make_test_config()
    )
    assert replayed.stats.instructions > 0


def test_replay_cache_sweep_shows_geometry_effects(tmp_path):
    """The classic use: one trace, two cache sizes, fewer misses with
    the bigger cache."""
    source = build_system("shared-mem", LoopWorkload, iterations=4,
                          array_words=256)
    record_run(source, tmp_path / "run.trace")

    def misses_with_l1(size):
        config = make_test_config()
        config.l1d_size = size
        system = replay_trace(
            tmp_path / "run.trace", "shared-mem", mem_config=config
        )
        return system.stats.aggregate_caches(".l1d").misses

    small = misses_with_l1(256)
    large = misses_with_l1(4096)
    assert large < small


def test_replay_rejects_empty_trace():
    with pytest.raises(WorkloadError):
        TraceWorkload(4, FunctionalMemory(), [])


def test_replay_rejects_out_of_range_cpu():
    records = [TraceRecord(7, AccessKind.LOAD, 0x100, 0)]
    with pytest.raises(WorkloadError):
        TraceWorkload(4, FunctionalMemory(), records)


def test_sync_heavy_stream_replays_with_same_kind_sequence(tmp_path):
    """Regression for the STORE_COND -> S collapse: a barrier-heavy
    recording must replay its SCs *as* SCs, so re-recording the replay
    yields the same per-CPU data-reference sequence."""
    source = build_system("shared-l2", SharingWorkload, rounds=2)
    recorder = record_run(source, tmp_path / "sync.trace")
    recorded_kinds = {r.kind for r in recorder.records}
    assert AccessKind.STORE_COND in recorded_kinds  # barrier uses LL/SC

    # The file round-trips the kind sequence exactly.
    reloaded = list(read_trace(tmp_path / "sync.trace"))
    assert [r.kind for r in reloaded] == [
        r.kind for r in recorder.records
    ]

    # Replaying re-issues those SCs; re-record and compare per CPU.
    replay = System(
        "shared-l2",
        TraceWorkload.from_file(4, FunctionalMemory(), tmp_path / "sync.trace"),
        mem_config=make_test_config(),
        max_cycles=2_000_000,
    )
    re_recorder = record_run(replay)

    def data_refs(records, cpu):
        return [
            (r.kind, r.addr)
            for r in records
            if r.cpu == cpu and r.kind != AccessKind.IFETCH
        ]

    for cpu in range(4):
        assert data_refs(re_recorder.records, cpu) == data_refs(
            recorder.records, cpu
        )


def test_replay_uses_recorded_fetch_pcs(tmp_path):
    records = [
        TraceRecord(0, AccessKind.IFETCH, 0x0040_2000, 0x0040_2000),
        TraceRecord(0, AccessKind.LOAD, 0x1000_0000, 0),
    ]
    workload = TraceWorkload(1, FunctionalMemory(), records)
    instructions = list(workload.program(0))
    assert len(instructions) == 1
    assert instructions[0].pc == 0x0040_2000


# ----------------------------------------------------------------------
# fast-lane handling (the recorder must forward the lane, not smother it)


class _FastHitMemory(MemorySystem):
    """Stub whose fast lane resolves loads/ifetches and declines stores."""

    name = "fast-stub"

    def __init__(self):
        super().__init__(make_test_config(), SystemStats.for_cpus(4))
        self.fast_calls = 0
        self.access_calls = 0

    def access(self, cpu, kind, addr, at):
        self.access_calls += 1
        return AccessResult(at + 2, StallLevel.NONE)

    def fast_load(self, cpu, addr, at):
        self.fast_calls += 1
        return at + 1

    def fast_ifetch(self, cpu, addr, at):
        self.fast_calls += 1
        return at + 1

    def fast_store(self, cpu, addr, at):
        self.fast_calls += 1
        return -1

    def drain(self, at):
        return at


def test_recorder_forwards_and_records_the_fast_lane():
    inner = _FastHitMemory()
    recorder = TraceRecorder(inner)
    assert recorder.fast_load(0, 0x100, 10) == 11
    assert recorder.fast_ifetch(1, 0x400000, 10) == 11
    # A decline is forwarded but NOT recorded: the CPU retries it via
    # access(), which records it once.
    assert recorder.fast_store(2, 0x200, 10) == -1
    assert inner.fast_calls == 3
    assert [(r.cpu, r.kind, r.addr) for r in recorder.records] == [
        (0, AccessKind.LOAD, 0x100),
        (1, AccessKind.IFETCH, 0x400000),
    ]
    assert recorder.records[1].pc == 0x400000


def test_recorder_fast_lane_respects_limit():
    inner = _FastHitMemory()
    recorder = TraceRecorder(inner).limit(1)
    assert recorder.fast_load(0, 0x100, 10) == 11
    assert recorder.fast_load(0, 0x200, 12) == 13
    # Still forwarded (simulation unchanged) but no longer recorded.
    assert inner.fast_calls == 2
    assert len(recorder.records) == 1


def _recorded_stream(fast: bool):
    functional = FunctionalMemory()
    workload = LoopWorkload(4, functional, iterations=4)
    config = make_test_config()
    if not fast:
        config = config.with_overrides(l1_fast_path=False)
    system = System(
        "shared-l1", workload, mem_config=config, max_cycles=2_000_000
    )
    recorder = record_run(system)
    return recorder.records, system.stats


def test_recording_identical_with_fast_lane_on_or_off():
    """Regression: recording used to silently disable the fast lane
    (the base-class fast_* methods decline). Forwarding must keep the
    captured stream — count *and* content — identical either way."""
    with_lane, stats_on = _recorded_stream(fast=True)
    without_lane, stats_off = _recorded_stream(fast=False)
    assert len(with_lane) == len(without_lane)
    assert with_lane == without_lane
    assert stats_on.to_dict() == stats_off.to_dict()
