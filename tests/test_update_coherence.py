"""Tests for the shared-L2 write-update coherence option (§2.3:
"invalidates or updates")."""

import pytest

from conftest import SharingWorkload, build_system

from repro.core.configs import test_config as make_test_config
from repro.core.system import System
from repro.errors import ConfigError
from repro.mem.functional import FunctionalMemory
from repro.mem.hierarchy import MemConfig
from repro.mem.shared_l2 import SharedL2System
from repro.mem.types import AccessKind
from repro.sim.stats import SystemStats

ADDR = 0x1000_0000


def make_update_system():
    config = make_test_config()
    config.l1_coherence = "update"
    stats = SystemStats.for_cpus(4)
    return SharedL2System(config, stats)


def test_config_rejects_unknown_policy():
    with pytest.raises(ConfigError):
        MemConfig(l1_coherence="snoopy")


def test_update_keeps_remote_copies():
    system = make_update_system()
    system.access(0, AccessKind.LOAD, ADDR, 0)
    system.access(1, AccessKind.LOAD, ADDR, 100)
    system.access(0, AccessKind.STORE, ADDR, 200)
    # Under write-update the sharer keeps its line...
    assert system.l1d[1].contains(ADDR)
    assert system.stats.cache("cpu1.l1d").updates_received == 1
    assert system.stats.cache("cpu1.l1d").invalidations_received == 0
    # ...and its next read is a hit.
    result = system.access(1, AccessKind.LOAD, ADDR, 300)
    assert result.done == 301


def test_update_values_still_flow():
    """Readers observe the new value once the drain is visible."""
    system = make_update_system()
    functional = FunctionalMemory()
    system.access(1, AccessKind.LOAD, ADDR, 0)
    result = system.access(0, AccessKind.STORE, ADDR, 100)
    functional.write(ADDR, 42, result.visible_cycle, cpu=0)
    assert functional.read(ADDR, result.visible_cycle + 1, cpu=1) == 42


def test_update_drops_dead_sharers_from_directory():
    system = make_update_system()
    system.access(1, AccessKind.LOAD, ADDR, 0)
    # CPU 1 silently evicts the line via conflicting loads.
    way = system.l1d[1].n_sets * system.config.line_size
    t = 100
    for k in range(1, system.l1d[1].assoc + 1):
        t = system.access(1, AccessKind.LOAD, ADDR + k * way, t).done
    assert not system.l1d[1].contains(ADDR)
    system.access(0, AccessKind.STORE, ADDR, t + 10)
    line_addr = ADDR // system.config.line_size
    assert not system.directory.is_holder(line_addr, 1)


def test_update_charges_broadcast_traffic():
    system = make_update_system()
    for cpu in (1, 2, 3):
        system.access(cpu, AccessKind.LOAD, ADDR, cpu * 200)
    before = system.crossbar.requests
    system.access(0, AccessKind.STORE, ADDR, 2000)
    # One drain + three sharer updates.
    assert system.crossbar.requests >= before + 4


def test_update_protocol_runs_sharing_workload():
    functional = FunctionalMemory()
    workload = SharingWorkload(4, functional, rounds=4)
    config = make_test_config()
    config.l1_coherence = "update"
    system = System(
        "shared-l2", workload, cpu_model="mipsy", mem_config=config,
        max_cycles=2_000_000,
    )
    stats = system.run()
    assert not system.truncated
    # Consumers never take invalidation misses under update.
    l1 = stats.aggregate_caches(".l1d")
    assert l1.misses_inval == 0
    assert l1.updates_received > 0


def test_update_beats_invalidate_on_repeated_sharing():
    """Producer/consumer rounds: update saves the consumers' re-fetch
    misses, so the run finishes faster than under invalidate."""

    def run(policy):
        functional = FunctionalMemory()
        workload = SharingWorkload(4, functional, rounds=6)
        config = make_test_config()
        config.l1_coherence = policy
        system = System(
            "shared-l2", workload, cpu_model="mipsy", mem_config=config,
            max_cycles=2_000_000,
        )
        return system.run().cycles

    assert run("update") < run("invalidate")
