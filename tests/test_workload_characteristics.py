"""Characterization tests: each workload's address stream must have the
properties the paper's analysis attributes to it.

These drive the raw instruction streams (no simulator) and check
working-set sizes, sharing structure, instruction mixes, and code
footprints — the levers every Figure 4-10 explanation pulls on.
"""

import pytest

from repro.isa.instructions import OpClass
from repro.mem.functional import FunctionalMemory
from repro.workloads import WORKLOADS


def build(name, scale="test"):
    return WORKLOADS[name](4, FunctionalMemory(), scale)


def stream(workload, cpu, limit=400_000):
    """Standalone drain with spin-terminating value feeding."""
    program = workload.program(cpu)
    value = None
    feed = 0
    for _ in range(limit):
        try:
            inst = program.send(value) if value is not None else next(program)
        except StopIteration:
            return
        value = None
        if inst.want_value:
            feed += 1
            # Cycle small values (terminates barrier counts and sense
            # spins) with an occasional huge one (terminates task-queue
            # bounds checks).
            value = (0, 1, 2, 3, 1 << 20)[feed % 5]
        yield inst


def data_lines(workload, cpu, **kwargs):
    lines = set()
    for inst in stream(workload, cpu, **kwargs):
        if inst.is_memory:
            lines.add(inst.addr // 32)
    return lines


def code_lines(workload, cpu, **kwargs):
    return {
        inst.pc // 32 for inst in stream(workload, cpu, **kwargs)
    }


def instruction_mix(workload, cpu, **kwargs):
    mix = {"load": 0, "store": 0, "branch": 0, "alu": 0, "fp": 0, "sync": 0}
    for inst in stream(workload, cpu, **kwargs):
        if inst.op in (OpClass.LL, OpClass.SC):
            mix["sync"] += 1
        elif inst.is_load:
            mix["load"] += 1
        elif inst.is_store:
            mix["store"] += 1
        elif inst.is_branch:
            mix["branch"] += 1
        elif inst.op in (OpClass.IALU, OpClass.IMUL, OpClass.IDIV):
            mix["alu"] += 1
        else:
            mix["fp"] += 1
    return mix


# ----------------------------------------------------------------------
# sharing structure


def test_eqntott_slaves_read_master_written_lines():
    workload = build("eqntott")
    master_stores = {
        inst.addr // 32
        for inst in stream(workload, 0)
        if inst.is_store and not inst.op == OpClass.SC
    }
    slave_loads = {
        inst.addr // 32
        for inst in stream(workload, 1)
        if inst.is_load and inst.op == OpClass.LOAD
    }
    shared = master_stores & slave_loads
    assert shared, "the master's vector writes must reach the slaves"


def test_ocean_neighbours_share_only_boundaries():
    workload = build("ocean")
    cpu0 = data_lines(workload, 0)
    cpu3 = data_lines(workload, 3)  # diagonal neighbour in the 2x2 grid
    sync_lines = {
        workload.barrier.count_addr // 32,
        workload.barrier.sense_addr // 32,
        workload.barrier.lock.addr // 32,
    }
    overlap = (cpu0 & cpu3) - sync_lines
    # Diagonal blocks share at most a corner's worth of lines.
    assert len(overlap) < 0.15 * len(cpu0)


def test_multiprog_user_data_is_unshared():
    workload = build("multiprog")
    kernel_floor = 0x8000_0000 // 32
    user = []
    for cpu in range(4):
        user.append({
            line for line in data_lines(workload, cpu) if line < kernel_floor
        })
    sync = {workload.kernel.bcache_lock.addr // 32,
            workload.kernel.runq_lock.addr // 32}
    for a in range(4):
        for b in range(a + 1, 4):
            assert not (user[a] & user[b]) - sync, (a, b)


def test_multiprog_kernel_data_is_shared():
    workload = build("multiprog")
    kernel_floor = 0x8000_0000 // 32
    kernel = [
        {line for line in data_lines(workload, cpu) if line >= kernel_floor}
        for cpu in range(4)
    ]
    assert kernel[0] & kernel[1] & kernel[2] & kernel[3]


def test_ear_working_set_is_tiny():
    workload = build("ear")
    lines = data_lines(workload, 0)
    # Channel state + outputs + coefficients + sync: well under 4 KB.
    assert len(lines) * 32 < 4096


def test_volpack_volume_is_read_only():
    workload = build("volpack")
    vol_lo = workload.volume_base // 32
    vol_hi = (workload.volume_base
              + workload.scanlines * workload.width * 4) // 32
    for cpu in range(4):
        for inst in stream(workload, cpu):
            if inst.is_store and vol_lo <= inst.addr // 32 < vol_hi:
                pytest.fail("voxel data must never be written")


def test_mp3d_cells_are_shared_readwrite():
    workload = build("mp3d")
    cell_lo = workload.cells_base // 32
    cell_hi = cell_lo + workload.n_cells
    writers = set()
    for cpu in range(4):
        for inst in stream(workload, cpu):
            if inst.is_store and cell_lo <= inst.addr // 32 < cell_hi:
                writers.add(cpu)
                break
    assert writers == {0, 1, 2, 3}


def test_fft_transforms_touch_disjoint_arrays_after_init():
    workload = build("fft")
    per_cpu = workload.n_ffts // 4
    for cpu in range(1, 4):
        own = range(cpu * per_cpu, (cpu + 1) * per_cpu)
        own_ranges = [
            (workload.array_base[k] // 32,
             (workload.array_base[k] + workload.n_points * 16) // 32)
            for k in own
        ]
        foreign_stores = 0
        for inst in stream(workload, cpu):
            if inst.is_store and inst.op == OpClass.STORE:
                line = inst.addr // 32
                if not any(lo <= line < hi for lo, hi in own_ranges):
                    if line < workload.spectrum_base // 32:
                        foreign_stores += 1
        assert foreign_stores == 0


# ----------------------------------------------------------------------
# code footprints (I-cache behaviour)


def test_multiprog_code_footprint_exceeds_test_icache():
    workload = build("multiprog")
    footprint = len(code_lines(workload, 0)) * 32
    assert footprint > 512  # the 1/32-scale I-cache


def test_tight_loop_workloads_have_small_code():
    for name in ("ear", "eqntott", "ocean"):
        workload = build(name)
        footprint = len(code_lines(workload, 1)) * 32
        assert footprint < 512, name


# ----------------------------------------------------------------------
# instruction mixes


def test_fp_apps_use_fp():
    for name in ("ocean", "fft", "ear", "mp3d", "volpack"):
        mix = instruction_mix(build(name), 1)
        assert mix["fp"] > 0, name


def test_eqntott_is_integer_only():
    mix = instruction_mix(build("eqntott"), 1)
    assert mix["fp"] == 0


def test_multiprog_is_store_heavy():
    """Section 4.3: the OS workload has a much larger store share."""
    mp = instruction_mix(build("multiprog"), 0)
    eq = instruction_mix(build("eqntott"), 1)
    mp_total = sum(mp.values())
    eq_total = sum(eq.values())
    assert mp["store"] / mp_total > eq["store"] / eq_total


def test_every_workload_synchronizes_except_none():
    for name in sorted(WORKLOADS):
        mix = instruction_mix(build(name), 1)
        assert mix["sync"] > 0, name


def test_branch_density_is_plausible():
    for name in sorted(WORKLOADS):
        mix = instruction_mix(build(name), 1)
        total = sum(mix.values())
        assert 0.02 < mix["branch"] / total < 0.45, (name, mix)
