"""Tests for the seven paper workloads at test scale."""

import pytest

from repro.core.configs import test_config as make_test_config
from repro.core.system import System
from repro.errors import WorkloadError
from repro.isa.instructions import OpClass
from repro.mem.functional import FunctionalMemory
from repro.workloads import WORKLOADS

ALL_NAMES = sorted(WORKLOADS)


def build(name, scale="test", n_cpus=4):
    functional = FunctionalMemory()
    return WORKLOADS[name](n_cpus, functional, scale), functional


# ----------------------------------------------------------------------
# static structure


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_constructs_at_every_scale(name):
    for scale in ("test", "bench", "paper"):
        workload, _ = build(name, scale)
        assert workload.name == name


@pytest.mark.parametrize("name", ALL_NAMES)
def test_unknown_scale_rejected(name):
    functional = FunctionalMemory()
    with pytest.raises(WorkloadError):
        WORKLOADS[name](4, functional, "gigantic")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_programs_emit_valid_instructions(name):
    workload, _ = build(name)
    program = workload.program(0)
    count = 0
    value_feed = None
    for _ in range(500):
        try:
            if value_feed is not None:
                inst = program.send(value_feed)
                value_feed = None
            else:
                inst = next(program)
        except StopIteration:
            break
        assert inst.pc % 4 == 0
        if inst.is_memory:
            assert inst.addr > 0
        if inst.want_value:
            value_feed = 0
        count += 1
    assert count > 10


@pytest.mark.parametrize("name", ALL_NAMES)
def test_every_cpu_has_a_program(name):
    workload, _ = build(name)
    for cpu in range(4):
        inst = next(workload.program(cpu))
        assert inst is not None


# ----------------------------------------------------------------------
# full runs (Mipsy, test scale, shared-l2 as the middle architecture)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_runs_to_completion(name):
    functional = FunctionalMemory()
    workload = WORKLOADS[name](4, functional, "test")
    system = System(
        "shared-l2",
        workload,
        cpu_model="mipsy",
        mem_config=make_test_config(),
        max_cycles=3_000_000,
    )
    stats = system.run()
    assert not system.truncated
    assert stats.instructions > 1000


def test_fft_validates_against_numpy():
    functional = FunctionalMemory()
    workload = WORKLOADS["fft"](4, functional, "test")
    system = System(
        "shared-l1",
        workload,
        cpu_model="mipsy",
        mem_config=make_test_config(),
        max_cycles=3_000_000,
    )
    system.run()  # raises WorkloadError if the FFT math broke
    assert len(workload.forward_results) == workload.n_ffts


def test_fft_validation_catches_corruption():
    functional = FunctionalMemory()
    workload = WORKLOADS["fft"](4, functional, "test")
    workload.forward_results[0] = workload.inputs[0] * 0 + 123.0
    with pytest.raises(WorkloadError):
        workload.validate()


def test_eqntott_master_does_extra_work():
    workload, _ = build("eqntott")
    master_instructions = sum(1 for _ in _drain(workload.program(0)))
    slave_instructions = sum(1 for _ in _drain(workload.program(1)))
    assert master_instructions > slave_instructions


def _drain(program, limit=1_000_000):
    """Run a program standalone, feeding cycling values to value-
    dependent loads so every spin loop terminates (an LL eventually
    reads 0, an SC result is truthy, a sense spin sees its target, a
    barrier count read eventually hits n-1)."""
    value_feed = None
    feed_cycle = 0
    for _ in range(limit):
        try:
            if value_feed is not None:
                inst = program.send(value_feed)
                value_feed = None
            else:
                inst = next(program)
        except StopIteration:
            return
        if inst.want_value:
            value_feed = feed_cycle % 4
            feed_cycle += 1
        yield inst


def test_mp3d_cells_alias_particles_in_l2():
    workload, _ = build("mp3d")
    l2_bytes = 64 * 1024  # test-scale value from the workload table
    assert (workload.cells_base - workload.particles_base) % l2_bytes == 0


def test_multiprog_processes_have_disjoint_data():
    workload, _ = build("multiprog")
    spans = []
    for space, base in zip(workload.proc_spaces, workload.inputs):
        spans.append((space.base, space.base + space.used_bytes))
    spans.sort()
    for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
        assert hi1 <= lo2


def test_multiprog_kernel_is_shared():
    workload, _ = build("multiprog")
    assert workload.kernel.buffers[0] >= 0x8000_0000


def test_ocean_decomposition_covers_interior():
    workload, _ = build("ocean")
    assert workload.rows * workload.cols == workload.n_cpus
    # Balanced row/column bands tile the interior exactly.
    interior = workload.n - 2
    row_edges = [
        1 + block * interior // workload.rows
        for block in range(workload.rows + 1)
    ]
    col_edges = [
        1 + block * interior // workload.cols
        for block in range(workload.cols + 1)
    ]
    assert row_edges[0] == 1 and row_edges[-1] == interior + 1
    assert col_edges[0] == 1 and col_edges[-1] == interior + 1
    assert all(lo < hi for lo, hi in zip(row_edges, row_edges[1:]))
    assert all(lo < hi for lo, hi in zip(col_edges, col_edges[1:]))


def test_volpack_tasks_cover_all_scanlines():
    workload, _ = build("volpack")
    assert workload.n_tasks * workload.task_size == workload.scanlines


def test_ear_rotating_partition():
    """Consecutive phases assign a CPU different channel blocks."""
    workload, _ = build("ear")
    chunk = workload.chunk
    seen_blocks = set()
    program = workload.program(1)
    addresses = []
    for inst in _drain(program):
        if inst.op is OpClass.LOAD and inst.addr >= workload.state_base:
            offset = inst.addr - workload.state_base
            if offset < workload.channels * 8:
                addresses.append(offset // 8)
    for idx in addresses:
        seen_blocks.add(idx // chunk)
    assert len(seen_blocks) >= min(4, workload.phases)
