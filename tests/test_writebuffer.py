"""Tests for the store (write) buffer."""

import pytest

from repro.errors import ConfigError
from repro.mem.writebuffer import WriteBuffer


def test_admit_with_room_is_immediate():
    buffer = WriteBuffer(depth=2)
    start, stalled = buffer.admit(10)
    assert start == 10 and not stalled


def test_full_buffer_stalls_until_oldest_completes():
    buffer = WriteBuffer(depth=2)
    buffer.admit(0)
    buffer.push(50)
    buffer.admit(1)
    buffer.push(60)
    start, stalled = buffer.admit(2)
    assert stalled
    assert start == 50  # the earliest completion frees a slot
    assert buffer.full_stalls == 1


def test_completed_entries_free_slots():
    buffer = WriteBuffer(depth=1)
    buffer.admit(0)
    buffer.push(5)
    start, stalled = buffer.admit(10)  # entry completed at 5 < 10
    assert start == 10 and not stalled


def test_fifo_visibility_ordering():
    buffer = WriteBuffer(depth=8)
    assert buffer.push(100) == 100
    # A later store that completes earlier may not become visible
    # before its predecessor.
    assert buffer.push(40) == 100
    assert buffer.push(150) == 150


def test_drain_time():
    buffer = WriteBuffer(depth=4)
    buffer.push(30)
    buffer.push(90)
    assert buffer.drain_time(10) == 90
    assert buffer.drain_time(100) == 100


def test_occupancy_counts_pending():
    buffer = WriteBuffer(depth=4)
    buffer.push(30)
    buffer.push(40)
    assert buffer.occupancy == 2
    assert buffer.stores == 2


def test_zero_depth_rejected():
    with pytest.raises(ConfigError):
        WriteBuffer(depth=0)
